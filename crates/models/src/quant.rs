//! Int8 image of the exposed rich branch `M_R`.
//!
//! TBNet's threat model leaves the rich branch in normal-world memory on
//! purpose — its weights are public by assumption — so its inference
//! precision is a pure speed/size trade. [`QuantBranch`] snapshots a
//! [`ChainNet`] into per-unit quantized convolutions: the BatchNorm is
//! folded into the weight first (same fold as the f32 fast path), then the
//! folded weight is quantized per output channel to int8 and executed with
//! the u8×i8 integer kernel in `tbnet_tensor::ops::qconv`.
//!
//! Activation quantization needs a per-unit input range. Every unit input
//! except the network input is the previous unit's post-BN, post-ReLU
//! output, whose per-channel distribution the previous BatchNorm's own
//! parameters describe (mean `beta_c`, standard deviation `|gamma_c|` over
//! the normalized activation): the static range `[0, max_c(beta_c +
//! 6|gamma_c|)]` covers it with 6-sigma headroom and costs nothing at
//! deployment time. The network input has no upstream BatchNorm and falls
//! back to a dynamic min/max scan per batch.
//!
//! The secure branch `M_T` never routes through this module.

use tbnet_tensor::ops::{
    add_assign, conv2d_forward_q8, maxpool2d_eval, unary, ActQuant, PackedConv2dWeight,
    QuantConv2dWeight,
};
use tbnet_tensor::Tensor;

use crate::{ChainNet, Result};

/// One quantized conv unit: BN-folded int8 weight, f32 folded bias, the
/// static activation quantizer (when derivable) and the unit's pooling.
#[derive(Debug, Clone)]
pub struct QuantUnit {
    weight: QuantConv2dWeight,
    bias: Tensor,
    /// `None` means dynamic per-batch calibration (the network input).
    act: Option<ActQuant>,
    stride: usize,
    pad: usize,
    pool: Option<usize>,
    skip_from: Option<usize>,
}

impl QuantUnit {
    /// The quantized weight.
    pub fn weight(&self) -> &QuantConv2dWeight {
        &self.weight
    }

    /// Whether this unit's activation range is static (BN-derived) rather
    /// than scanned per batch.
    pub fn has_static_range(&self) -> bool {
        self.act.is_some()
    }
}

/// The quantized rich branch: every unit of a [`ChainNet`] feature
/// extractor converted for int8 execution. The classifier head is not
/// included — in the two-branch deployment the head runs on the merged
/// stream, not on `M_R` alone.
#[derive(Debug, Clone)]
pub struct QuantBranch {
    units: Vec<QuantUnit>,
}

impl QuantBranch {
    /// Quantizes every unit of `net`. The network's current weights,
    /// BatchNorm parameters and running statistics are baked in; requantize
    /// after any further training.
    ///
    /// # Errors
    ///
    /// Returns shape errors for inconsistent layer state.
    pub fn from_chain(net: &ChainNet) -> Result<QuantBranch> {
        let mut units = Vec::with_capacity(net.units().len());
        for u in net.units() {
            let (scale, shift) = u.bn().inference_scale_shift();
            let (pack, bias) = PackedConv2dWeight::fold_bn(
                &u.conv().weight().value,
                u.conv().bias().map(|b| &b.value),
                &scale,
                &shift,
            )?;
            // Depthwise weights are stored `[C, 1, KH, KW]`; the integer
            // kernel only speaks dense layouts, so expand to a block-diagonal
            // `[C, C, KH, KW]` — the off-diagonal zeros quantize exactly, so
            // the int8 output is unchanged.
            let folded = if u.conv().is_depthwise() {
                expand_depthwise_dense(pack.weight())?
            } else {
                pack.weight().clone()
            };
            let weight = QuantConv2dWeight::quantize(&folded)?;
            units.push(QuantUnit {
                weight,
                bias,
                act: None,
                stride: u.conv().stride(),
                pad: u.conv().pad(),
                pool: u.spec().pool_after,
                skip_from: u.spec().skip_from,
            });
        }
        // Static activation ranges: unit i>0 consumes unit i-1's post-ReLU
        // output, bounded by that unit's BatchNorm affine.
        for (i, unit) in units.iter_mut().enumerate().skip(1) {
            let bn = net.units()[i - 1].bn();
            let g = bn.gamma().value.as_slice();
            let b = bn.beta().value.as_slice();
            let hi = g
                .iter()
                .zip(b)
                .map(|(&gi, &bi)| bi + 6.0 * gi.abs())
                .fold(0.0f32, f32::max)
                .max(1e-3);
            unit.act = Some(ActQuant::from_range(0.0, hi));
        }
        Ok(QuantBranch { units })
    }

    /// Number of quantized units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// The quantized units.
    pub fn units(&self) -> &[QuantUnit] {
        &self.units
    }

    /// Total bytes of quantized weight state (what the REE ships instead of
    /// f32 weights).
    pub fn packed_bytes(&self) -> usize {
        self.units
            .iter()
            .map(|u| u.weight.packed_bytes() + u.bias.numel() * 4)
            .sum()
    }

    /// Runs unit `i` on `input` (and optional residual `skip`, shaped like
    /// the pre-pool activation): int8 conv with fused bias/ReLU, then
    /// index-free pooling. Immutable — safe to share across a deployment's
    /// inference calls.
    ///
    /// # Errors
    ///
    /// Returns shape errors when operands disagree with the unit geometry.
    pub fn forward_unit(&self, i: usize, input: &Tensor, skip: Option<&Tensor>) -> Result<Tensor> {
        let u = &self.units[i];
        let act = u.act.unwrap_or_else(|| ActQuant::from_tensor(input));
        let mut out = match skip {
            None => conv2d_forward_q8(input, &u.weight, act, Some(&u.bias), u.stride, u.pad, true)?,
            Some(s) => {
                // A residual add sits between the conv and the ReLU, so the
                // ReLU cannot fuse into the integer kernel here.
                let mut pre = conv2d_forward_q8(
                    input,
                    &u.weight,
                    act,
                    Some(&u.bias),
                    u.stride,
                    u.pad,
                    false,
                )?;
                add_assign(&mut pre, s)?;
                unary(&pre, &|x| x.max(0.0))
            }
        };
        if let Some(k) = u.pool {
            out = maxpool2d_eval(&out, k)?;
        }
        Ok(out)
    }

    /// Runs the whole branch: the int8 analogue of the feature-extractor
    /// part of [`ChainNet::predict_inference`].
    ///
    /// # Errors
    ///
    /// Returns shape errors when `input` disagrees with the branch.
    pub fn features(&self, input: &Tensor) -> Result<Tensor> {
        let n = self.units.len();
        let mut is_skip_src = vec![false; n];
        for u in &self.units {
            if let Some(j) = u.skip_from {
                is_skip_src[j] = true;
            }
        }
        let mut outs: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        let mut x = input.clone();
        for i in 0..n {
            let skip = self.units[i].skip_from.and_then(|j| outs[j].as_ref());
            let y = self.forward_unit(i, &x, skip)?;
            if is_skip_src[i] {
                outs[i] = Some(y.clone());
            }
            x = y;
        }
        Ok(x)
    }
}

/// Expands a depthwise weight `[C, 1, KH, KW]` into the equivalent dense
/// `[C, C, KH, KW]` block-diagonal weight (channel `c`'s taps on the
/// diagonal, zeros elsewhere).
fn expand_depthwise_dense(weight: &Tensor) -> Result<Tensor> {
    let (c, kh, kw) = (weight.dim(0), weight.dim(2), weight.dim(3));
    let mut dense = Tensor::zeros(&[c, c, kh, kw]);
    let src = weight.as_slice();
    let dst = dense.as_mut_slice();
    let k = kh * kw;
    for ch in 0..c {
        let taps = &src[ch * k..(ch + 1) * k];
        dst[(ch * c + ch) * k..(ch * c + ch) * k + k].copy_from_slice(taps);
    }
    Ok(dense)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vgg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbnet_nn::{Layer, Mode};
    use tbnet_tensor::init;

    #[test]
    fn quantized_features_track_f32_inference() {
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        // Populate running statistics so BN folding and the static ranges
        // describe the actual activation distribution.
        for _ in 0..4 {
            let warm = init::randn(&[8, 3, 16, 16], 1.0, &mut rng);
            net.forward(&warm, Mode::Train).unwrap();
        }
        let q = QuantBranch::from_chain(&net).unwrap();
        assert_eq!(q.unit_count(), net.units().len());
        assert!(!q.units()[0].has_static_range());
        assert!(q.units()[1].has_static_range());

        let x = init::randn(&[4, 3, 16, 16], 1.0, &mut rng);
        let qf = q.features(&x).unwrap();
        let mut rf = x.clone();
        let n = net.units().len();
        for i in 0..n {
            rf = net.units_mut()[i]
                .forward_inference(&rf, None, None)
                .unwrap();
        }
        assert_eq!(qf.dims(), rf.dims());
        let scale = rf
            .as_slice()
            .iter()
            .fold(0.0f32, |m, &v| m.max(v.abs()))
            .max(1e-6);
        let max_err = qf
            .as_slice()
            .iter()
            .zip(rf.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            max_err / scale < 0.25,
            "int8 features diverged: max err {max_err} vs scale {scale}"
        );
    }

    #[test]
    fn quantized_branch_is_deterministic() {
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let mut rng = StdRng::seed_from_u64(1);
        let net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let q = QuantBranch::from_chain(&net).unwrap();
        let x = init::randn(&[2, 3, 16, 16], 1.0, &mut rng);
        let a = q.features(&x).unwrap();
        let b = q.features(&x).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
