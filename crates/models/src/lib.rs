//! Model zoo for the TBNet reproduction: VGG-style and ResNet-20 networks.
//!
//! Two views of every model live here:
//!
//! * [`ModelSpec`] — a declarative architecture descriptor (per-unit channel
//!   counts, strides, pooling, residual skips and pruning groups). The TBNet
//!   pruning pass in `tbnet-core` rewrites specs, and the TEE cost model in
//!   `tbnet-tee` prices them (FLOPs, parameter bytes, activation bytes).
//! * [`ChainNet`] — an executable network built from a spec: a chain of
//!   conv → batch-norm → ReLU units with optional max-pooling and residual
//!   connections, plus a classifier head.
//!
//! The per-unit structure (rather than a flat `Sequential`) is what makes the
//! two-branch substitution model of the paper expressible: `tbnet-core`
//! drives two `ChainNet` feature extractors unit-by-unit and merges their
//! feature maps after every unit.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), tbnet_models::ModelError> {
//! use rand::SeedableRng;
//! use tbnet_models::{vgg, ChainNet};
//! use tbnet_nn::{Layer, Mode};
//! use tbnet_tensor::Tensor;
//!
//! let spec = vgg::vgg_tiny(10, 3, (16, 16));
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = ChainNet::from_spec(&spec, &mut rng)?;
//! let logits = net.forward(&Tensor::zeros(&[2, 3, 16, 16]), Mode::Eval)?;
//! assert_eq!(logits.dims(), &[2, 10]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod descriptor;
mod error;

pub mod mobile;
pub mod quant;
pub mod resnet;
pub mod vgg;

pub use chain::{accumulate_grad, ChainNet, Head, Unit, UnitBnBackward};
pub use descriptor::{HeadSpec, ModelSpec, UnitSpec, UnitTrace};
pub use error::ModelError;
pub use quant::{QuantBranch, QuantUnit};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, ModelError>;
