use std::error::Error;
use std::fmt;

use tbnet_nn::NnError;
use tbnet_tensor::TensorError;

/// Error type for model construction and execution.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ModelError {
    /// A layer operation failed.
    Nn(NnError),
    /// A tensor kernel failed.
    Tensor(TensorError),
    /// The model spec is internally inconsistent.
    InvalidSpec {
        /// Description of the inconsistency.
        reason: String,
    },
    /// A residual skip referenced a unit whose output shape does not match.
    SkipShapeMismatch {
        /// Index of the unit receiving the skip.
        unit: usize,
        /// Index of the unit the skip reads from.
        from: usize,
        /// Description of the mismatch.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Nn(e) => write!(f, "layer failure: {e}"),
            ModelError::Tensor(e) => write!(f, "tensor failure: {e}"),
            ModelError::InvalidSpec { reason } => write!(f, "invalid model spec: {reason}"),
            ModelError::SkipShapeMismatch { unit, from, reason } => {
                write!(
                    f,
                    "skip into unit {unit} from unit {from} is inconsistent: {reason}"
                )
            }
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Nn(e) => Some(e),
            ModelError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for ModelError {
    fn from(e: NnError) -> Self {
        ModelError::Nn(e)
    }
}

impl From<TensorError> for ModelError {
    fn from(e: TensorError) -> Self {
        ModelError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = ModelError::from(NnError::MissingForwardCache { layer: "Conv2d" });
        assert!(e.to_string().contains("Conv2d"));
        assert!(Error::source(&e).is_some());
        let e2 = ModelError::InvalidSpec {
            reason: "empty".into(),
        };
        assert!(e2.to_string().contains("empty"));
        assert!(Error::source(&e2).is_none());
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
