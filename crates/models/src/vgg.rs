//! VGG-style architecture builders.
//!
//! The paper evaluates "VGG18" — an 18-weight-layer VGG variant (17
//! convolutions plus the classifier). [`vgg18`] reproduces that at CIFAR
//! scale, and [`vgg_tiny`] is the width/depth-scaled variant the experiment
//! harness trains in CPU-minutes (see `DESIGN.md` §2 for the substitution
//! argument).

use crate::{HeadSpec, ModelSpec, UnitSpec};

/// Builds a VGG-style spec from `(width, convs)` stages; every stage ends
/// with a 2×2 max-pool. Each unit gets its own pruning group (plain chains
/// have no cross-unit mask constraints).
///
/// # Panics
///
/// Panics if `stages` is empty.
pub fn vgg_from_stages(
    name: &str,
    stages: &[(usize, usize)],
    classes: usize,
    in_channels: usize,
    input_hw: (usize, usize),
) -> ModelSpec {
    assert!(!stages.is_empty(), "need at least one stage");
    let mut units = Vec::new();
    let mut group = 0usize;
    for &(width, convs) in stages {
        for ci in 0..convs {
            let mut unit = UnitSpec::conv3x3(width, group);
            group += 1;
            if ci == convs - 1 {
                unit = unit.with_pool(2);
            }
            units.push(unit);
        }
    }
    ModelSpec {
        name: name.to_string(),
        in_channels,
        input_hw,
        classes,
        units,
        head: HeadSpec::FlattenLinear,
    }
}

/// The paper's VGG18 at CIFAR scale (32×32 input): 17 convolutions in five
/// pooled stages plus the linear classifier — 18 weight layers.
pub fn vgg18(classes: usize, in_channels: usize, input_hw: (usize, usize)) -> ModelSpec {
    vgg_from_stages(
        "VGG18",
        &[(64, 2), (128, 2), (256, 4), (512, 4), (512, 5)],
        classes,
        in_channels,
        input_hw,
    )
}

/// Width/depth-scaled VGG used by the experiment harness (16×16 inputs,
/// three pooled stages, 6 convolutions). Architecturally identical in kind to
/// [`vgg18`]: conv-BN-ReLU stacks with stage pooling and a flatten-linear
/// head.
pub fn vgg_tiny(classes: usize, in_channels: usize, input_hw: (usize, usize)) -> ModelSpec {
    vgg_from_stages(
        "VGG18-t",
        &[(16, 2), (32, 2), (64, 2)],
        classes,
        in_channels,
        input_hw,
    )
}

/// Like [`vgg_from_stages`] but with 5×5 convolutions (stride 1, pad 2 —
/// spatial-preserving, same as the 3×3 units). Exercises the widened direct
/// stencil in the conv engine end-to-end.
///
/// # Panics
///
/// Panics if `stages` is empty.
pub fn vgg5x5_from_stages(
    name: &str,
    stages: &[(usize, usize)],
    classes: usize,
    in_channels: usize,
    input_hw: (usize, usize),
) -> ModelSpec {
    assert!(!stages.is_empty(), "need at least one stage");
    let mut units = Vec::new();
    let mut group = 0usize;
    for &(width, convs) in stages {
        for ci in 0..convs {
            let mut unit = UnitSpec::conv5x5(width, group);
            group += 1;
            if ci == convs - 1 {
                unit = unit.with_pool(2);
            }
            units.push(unit);
        }
    }
    ModelSpec {
        name: name.to_string(),
        in_channels,
        input_hw,
        classes,
        units,
        head: HeadSpec::FlattenLinear,
    }
}

/// 5×5-kernel sibling of [`vgg_tiny`]: three pooled single-conv stages at
/// the same widths, one wide receptive field per stage instead of two
/// stacked 3×3s.
pub fn vgg_tiny_5x5(classes: usize, in_channels: usize, input_hw: (usize, usize)) -> ModelSpec {
    vgg5x5_from_stages(
        "VGG5x5-t",
        &[(16, 1), (32, 1), (64, 1)],
        classes,
        in_channels,
        input_hw,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg18_has_18_weight_layers() {
        let spec = vgg18(10, 3, (32, 32));
        assert_eq!(spec.units.len(), 17);
        assert!(spec.trace().is_ok());
        assert_eq!(spec.head, HeadSpec::FlattenLinear);
        // 5 pools: 32 → 1
        let t = spec.trace().unwrap();
        assert_eq!(t.last().unwrap().out_hw, (1, 1));
        assert_eq!(spec.head_in_features().unwrap(), 512);
    }

    #[test]
    fn vgg_tiny_fits_16px_input() {
        let spec = vgg_tiny(10, 3, (16, 16));
        assert_eq!(spec.units.len(), 6);
        let t = spec.trace().unwrap();
        assert_eq!(t.last().unwrap().out_hw, (2, 2));
        assert_eq!(spec.head_in_features().unwrap(), 64 * 4);
    }

    #[test]
    fn every_unit_has_unique_group() {
        let spec = vgg18(10, 3, (32, 32));
        assert_eq!(spec.group_count(), spec.units.len());
    }

    #[test]
    fn no_skips_in_vgg() {
        let spec = vgg18(100, 3, (32, 32));
        assert!(spec.units.iter().all(|u| u.skip_from.is_none()));
    }

    #[test]
    fn pool_only_on_stage_ends() {
        let spec = vgg_tiny(10, 3, (16, 16));
        let pooled: Vec<bool> = spec.units.iter().map(|u| u.pool_after.is_some()).collect();
        assert_eq!(pooled, vec![false, true, false, true, false, true]);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn empty_stages_panic() {
        vgg_from_stages("x", &[], 10, 3, (16, 16));
    }

    #[test]
    fn vgg5x5_tiny_traces_and_preserves_spatial() {
        let spec = vgg_tiny_5x5(10, 3, (16, 16));
        assert_eq!(spec.units.len(), 3);
        assert!(spec.units.iter().all(|u| u.kernel == 5 && u.pad == 2));
        let t = spec.trace().unwrap();
        // pad 2 keeps conv spatial dims; only the pools shrink.
        assert_eq!(t[0].conv_hw, (16, 16));
        assert_eq!(t.last().unwrap().out_hw, (2, 2));
    }
}
