//! MobileNet-style depthwise-separable architecture builders.
//!
//! Each separable block is a depthwise 3×3 unit (per-channel spatial
//! filtering, weight `[C, 1, 3, 3]`) followed by a pointwise 1×1 unit
//! (cross-channel mixing). The depthwise unit shares its producer's pruning
//! group — pruning a channel removes the matching depthwise kernel with it,
//! keeping the chain consistent without an input-channel slice (see
//! `apply_masks_to_chain`).

use crate::{HeadSpec, ModelSpec, UnitSpec};

/// Builds a depthwise-separable spec from `(width, blocks)` stages: a 3×3
/// stem at the first stage's width, then per block a depthwise 3×3 (at the
/// incoming width, sharing the producer's group) and a pointwise 1×1 (to the
/// stage width, fresh group). The last block of every stage ends with a 2×2
/// max-pool; the head is global-average-pool + linear.
///
/// # Panics
///
/// Panics if `stages` is empty.
pub fn mobile_from_stages(
    name: &str,
    stages: &[(usize, usize)],
    classes: usize,
    in_channels: usize,
    input_hw: (usize, usize),
) -> ModelSpec {
    assert!(!stages.is_empty(), "need at least one stage");
    let mut units = Vec::new();
    let mut next_group = 0usize;
    let mut fresh_group = || {
        let g = next_group;
        next_group += 1;
        g
    };

    let stem_group = fresh_group();
    units.push(UnitSpec::conv3x3(stages[0].0, stem_group));
    let mut cur_width = stages[0].0;
    let mut cur_group = stem_group;

    for &(width, blocks) in stages {
        for b in 0..blocks {
            units.push(UnitSpec::depthwise3x3(cur_width, cur_group));
            let pw_group = fresh_group();
            let mut pw = UnitSpec::conv1x1(width, pw_group);
            if b == blocks - 1 {
                pw = pw.with_pool(2);
            }
            units.push(pw);
            cur_width = width;
            cur_group = pw_group;
        }
    }

    ModelSpec {
        name: name.to_string(),
        in_channels,
        input_hw,
        classes,
        units,
        head: HeadSpec::GapLinear,
    }
}

/// Harness-scale depthwise-separable network (16×16 inputs, three pooled
/// single-block stages): stem + 3 × (depthwise 3×3, pointwise 1×1).
pub fn mobile_tiny(classes: usize, in_channels: usize, input_hw: (usize, usize)) -> ModelSpec {
    mobile_from_stages(
        "Mobile-t",
        &[(16, 1), (32, 1), (64, 1)],
        classes,
        in_channels,
        input_hw,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobile_tiny_traces() {
        let spec = mobile_tiny(10, 3, (16, 16));
        assert_eq!(spec.units.len(), 7); // stem + 3 × (dw, pw)
        let t = spec.trace().unwrap();
        assert_eq!(t.last().unwrap().out_hw, (2, 2));
        assert_eq!(spec.head_in_features().unwrap(), 64);
    }

    #[test]
    fn depthwise_units_alternate_and_share_producer_group() {
        let spec = mobile_tiny(10, 3, (16, 16));
        for (i, u) in spec.units.iter().enumerate() {
            let expect_dw = i > 0 && i % 2 == 1;
            assert_eq!(u.depthwise, expect_dw, "unit {i}");
            if u.depthwise {
                assert_eq!(u.group, spec.units[i - 1].group, "unit {i}");
                assert_eq!(u.kernel, 3);
            }
        }
    }

    #[test]
    fn separable_blocks_are_cheaper_than_dense() {
        let mobile = mobile_tiny(10, 3, (16, 16));
        let dense = crate::vgg::vgg_tiny(10, 3, (16, 16));
        assert!(mobile.forward_macs().unwrap() < dense.forward_macs().unwrap());
        assert!(mobile.param_count().unwrap() < dense.param_count().unwrap());
    }
}
