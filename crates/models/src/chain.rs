//! Executable chain networks built from [`ModelSpec`]s.
//!
//! A [`ChainNet`] is a sequence of [`Unit`]s (conv → BN → ReLU, optional
//! max-pool, optional residual input) plus a classifier [`Head`]. Units are
//! public and individually drivable — `tbnet-core` runs the two branches of
//! the TBNet substitution model unit-by-unit and injects the REE→TEE merge
//! between units, something a closed `Sequential` could not express.
//!
//! The split-phase hooks ([`Unit::forward_conv`] / [`Unit::forward_from_conv`]
//! and [`Unit::backward_to_bn`] / [`Unit::backward_from_bn`]) expose each
//! unit's BatchNorm as a synchronization point: `tbnet-core`'s generic
//! data-parallel trainer pauses there to merge batch statistics (forward)
//! and per-channel reductions (backward) across minibatch shards. Both the
//! plain victim network and the interleaved two-branch model build their
//! lockstep schedules from these four hooks.

use rand::Rng;

use tbnet_nn::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool, Layer, Linear, MaxPool2d, Mode, Param, Relu,
};
use tbnet_tensor::ops::Epilogue;
use tbnet_tensor::{backend, BackendKind, Tensor};

use crate::{HeadSpec, ModelError, ModelSpec, Result, UnitSpec};

/// Gradients flowing out of a [`Unit`] backward pass.
#[derive(Debug, Clone)]
pub struct UnitGrads {
    /// Gradient w.r.t. the unit's main input.
    pub grad_input: Tensor,
    /// Gradient w.r.t. the residual skip input (present when the forward pass
    /// received one).
    pub grad_skip: Option<Tensor>,
}

/// Intermediate state of a split-phase unit backward pass, produced by
/// [`Unit::backward_to_bn`]. Data-parallel training synchronizes the
/// BatchNorm reductions across shards between the two phases.
#[derive(Debug, Clone)]
pub struct UnitBnBackward {
    /// Gradient w.r.t. the BN output / pre-activation (after pool and ReLU
    /// backward).
    pub grad_pre: Tensor,
    /// Gradient w.r.t. the skip input, when the forward pass received one.
    pub grad_skip: Option<Tensor>,
    /// Per-channel `Σ dy` over this shard.
    pub sum_dy: Tensor,
    /// Per-channel `Σ dy·x̂` over this shard.
    pub sum_dy_xhat: Tensor,
}

/// One conv → batch-norm → ReLU unit with optional max pooling and an
/// optional residual input added to the pre-activation.
#[derive(Debug, Clone)]
pub struct Unit {
    spec: UnitSpec,
    conv: Conv2d,
    bn: BatchNorm2d,
    relu: Relu,
    pool: Option<MaxPool2d>,
    had_skip: bool,
    backend: BackendKind,
}

impl Unit {
    /// Builds a unit with freshly initialized weights.
    pub fn new<R: Rng + ?Sized>(in_channels: usize, spec: UnitSpec, rng: &mut R) -> Self {
        let conv = if spec.depthwise {
            Conv2d::new_depthwise(spec.out_channels, spec.kernel, spec.stride, spec.pad, rng)
        } else {
            Conv2d::new(
                in_channels,
                spec.out_channels,
                spec.kernel,
                spec.stride,
                spec.pad,
                rng,
            )
        };
        let bn = BatchNorm2d::new(spec.out_channels);
        let pool = spec.pool_after.map(MaxPool2d::new);
        Unit {
            spec,
            conv,
            bn,
            relu: Relu::new(),
            pool,
            had_skip: false,
            backend: backend::global_kind(),
        }
    }

    /// The unit's spec (kept in sync with the actual layer shapes).
    pub fn spec(&self) -> &UnitSpec {
        &self.spec
    }

    /// The convolution layer.
    pub fn conv(&self) -> &Conv2d {
        &self.conv
    }

    /// Mutable convolution access (pruning rewrites weights).
    pub fn conv_mut(&mut self) -> &mut Conv2d {
        &mut self.conv
    }

    /// The batch-norm layer.
    pub fn bn(&self) -> &BatchNorm2d {
        &self.bn
    }

    /// Mutable batch-norm access.
    pub fn bn_mut(&mut self) -> &mut BatchNorm2d {
        &mut self.bn
    }

    /// Output channel count (from the convolution weight, the ground truth).
    pub fn out_channels(&self) -> usize {
        self.conv.out_channels()
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.conv.in_channels()
    }

    /// Updates the stored spec's channel count after pruning rewrote the
    /// convolution; also updates group/skip metadata when provided.
    pub fn sync_spec_channels(&mut self) {
        self.spec.out_channels = self.conv.out_channels();
    }

    /// Rewrites the skip source recorded in the spec (rollback finalization
    /// strips skips from `M_R`).
    pub fn set_skip_from(&mut self, from: Option<usize>) {
        self.spec.skip_from = from;
    }

    /// Re-pins the unit's layers (and its skip-merge arithmetic) to a
    /// compute backend.
    pub fn set_backend(&mut self, kind: BackendKind) {
        self.backend = kind;
        self.conv.set_backend(kind);
        self.bn.set_backend(kind);
        self.relu.set_backend(kind);
        if let Some(p) = self.pool.as_mut() {
            p.set_backend(kind);
        }
    }

    /// Runs the unit: `pool(relu(bn(conv(x)) + skip))`.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `input` or `skip` disagree with the unit's
    /// geometry.
    pub fn forward(&mut self, input: &Tensor, skip: Option<&Tensor>, mode: Mode) -> Result<Tensor> {
        let conv_out = self.forward_conv(input, mode)?;
        self.forward_from_conv(&conv_out, skip, mode, None)
    }

    /// First phase of a split forward pass: the convolution alone. A
    /// data-parallel trainer runs this on every shard, merges the BatchNorm
    /// statistics of the conv outputs across shards, and resumes with
    /// [`Unit::forward_from_conv`].
    ///
    /// # Errors
    ///
    /// Returns shape errors when `input` disagrees with the convolution.
    pub fn forward_conv(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        Ok(self.conv.forward(input, mode)?)
    }

    /// Second phase of a split forward pass: BatchNorm (optionally with
    /// externally synchronized `(mean, var)` batch statistics), skip add,
    /// ReLU and pooling. `forward(x, skip, mode)` is exactly
    /// `forward_from_conv(forward_conv(x), skip, mode, None)`.
    ///
    /// `batch_stats` is only meaningful in training mode; `None` uses the
    /// conv output's own statistics (or running statistics in eval mode).
    ///
    /// # Errors
    ///
    /// Returns shape errors when `conv_out`, `skip` or the statistics
    /// disagree with the unit's geometry.
    pub fn forward_from_conv(
        &mut self,
        conv_out: &Tensor,
        skip: Option<&Tensor>,
        mode: Mode,
        batch_stats: Option<(&Tensor, &Tensor)>,
    ) -> Result<Tensor> {
        let mut pre = match batch_stats {
            Some((mean, var)) if mode.is_train() => {
                self.bn.forward_with_batch_stats(conv_out, mean, var)?
            }
            _ => self.bn.forward(conv_out, mode)?,
        };
        if let Some(s) = skip {
            self.backend.imp().add_assign(&mut pre, s).map_err(|e| {
                ModelError::SkipShapeMismatch {
                    unit: usize::MAX,
                    from: usize::MAX,
                    reason: e.to_string(),
                }
            })?;
        }
        self.had_skip = skip.is_some();
        let act = self.relu.forward(&pre, mode)?;
        let out = match self.pool.as_mut() {
            Some(p) => p.forward(&act, mode)?,
            None => act,
        };
        Ok(out)
    }

    /// Inference fast path: BN-folded packed convolution with bias, ReLU
    /// and (when fusable) the elementwise adds applied as a single fused
    /// epilogue while output tiles are cache-hot, plus index-free pooling.
    ///
    /// Equivalent to `forward(input, skip, Mode::Eval)` followed by adding
    /// `merge` — up to f32 rounding of the folded weights. `merge` is the
    /// other branch's (aligned) unit output in the two-branch forward and
    /// must be shaped like this unit's *output*; it fuses into the conv
    /// epilogue when the unit has no pooling and no skip, and is applied as
    /// a separate add otherwise (pooling sits between ReLU and the merge,
    /// and a skip already occupies the epilogue's add slot).
    ///
    /// # Errors
    ///
    /// Returns shape errors when `input`, `skip` or `merge` disagree with
    /// the unit's geometry.
    pub fn forward_inference(
        &mut self,
        input: &Tensor,
        skip: Option<&Tensor>,
        merge: Option<&Tensor>,
    ) -> Result<Tensor> {
        let (scale, shift) = self.bn.inference_scale_shift();
        let stride = self.conv.stride();
        let pad = self.conv.pad();
        let depthwise = self.conv.is_depthwise();
        let imp = self.backend.imp();
        let (pack, bias) = self.conv.packed_inference(&scale, &shift)?;
        let epilogue = match (skip, merge, self.pool.is_some()) {
            (Some(s), _, _) => Epilogue::AddRelu(s),
            (None, Some(m), false) => Epilogue::ReluAdd(m),
            _ => Epilogue::Relu,
        };
        let merge_fused = matches!(epilogue, Epilogue::ReluAdd(_));
        let act = if depthwise {
            imp.conv2d_depthwise_forward_fused(input, pack, Some(bias), stride, pad, epilogue)?
        } else {
            imp.conv2d_forward_fused(input, pack, Some(bias), stride, pad, epilogue)?
        };
        let mut out = match self.pool.as_ref() {
            Some(p) => imp.maxpool2d_eval(&act, p.window())?,
            None => act,
        };
        if let (Some(m), false) = (merge, merge_fused) {
            imp.add_assign(&mut out, m)?;
        }
        Ok(out)
    }

    /// Backward pass matching the last training-mode [`Unit::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`tbnet_nn::NnError::MissingForwardCache`] (wrapped) when no
    /// training forward preceded this call.
    pub fn backward(&mut self, grad_out: &Tensor) -> Result<UnitGrads> {
        let halfway = self.backward_to_bn(grad_out)?;
        let count = halfway.grad_pre.dim(0) * halfway.grad_pre.dim(2) * halfway.grad_pre.dim(3);
        let grad_input = self.backward_from_bn(
            &halfway.grad_pre,
            &halfway.sum_dy,
            &halfway.sum_dy_xhat,
            count,
        )?;
        Ok(UnitGrads {
            grad_input,
            grad_skip: halfway.grad_skip,
        })
    }

    /// First phase of a split backward pass: pool and ReLU backward, the
    /// skip gradient, and the BatchNorm per-channel reductions (γ/β
    /// gradients are accumulated from this shard's reductions). A
    /// data-parallel trainer sums the reductions across shards and resumes
    /// with [`Unit::backward_from_bn`]; [`Unit::backward`] chains the two
    /// with purely local statistics.
    ///
    /// # Errors
    ///
    /// Returns a missing-cache error (wrapped) when no training-mode forward
    /// preceded this call.
    pub fn backward_to_bn(&mut self, grad_out: &Tensor) -> Result<UnitBnBackward> {
        let g = match self.pool.as_mut() {
            Some(p) => p.backward(grad_out)?,
            None => grad_out.clone(),
        };
        let grad_pre = self.relu.backward(&g)?;
        // The skip input was added directly to the pre-activation, so its
        // gradient is exactly the pre-activation gradient.
        let grad_skip = self.had_skip.then(|| grad_pre.clone());
        let (sum_dy, sum_dy_xhat) = self.bn.backward_reduce(&grad_pre)?;
        Ok(UnitBnBackward {
            grad_pre,
            grad_skip,
            sum_dy,
            sum_dy_xhat,
        })
    }

    /// Second phase of a split backward pass: the BatchNorm input gradient
    /// from (possibly globally summed) reductions over `total_count`
    /// elements per channel, then the convolution backward.
    ///
    /// # Errors
    ///
    /// Returns shape/missing-cache errors (wrapped) for inconsistent
    /// operands.
    pub fn backward_from_bn(
        &mut self,
        grad_pre: &Tensor,
        sum_dy: &Tensor,
        sum_dy_xhat: &Tensor,
        total_count: usize,
    ) -> Result<Tensor> {
        let g_bn = self
            .bn
            .backward_input_with_stats(grad_pre, sum_dy, sum_dy_xhat, total_count)?;
        Ok(self.conv.backward(&g_bn)?)
    }

    /// Visits the unit's trainable parameters (conv weight, BN γ/β).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv.visit_params(f);
        self.bn.visit_params(f);
    }

    /// Clears parameter gradients.
    pub fn zero_grad(&mut self) {
        self.conv.zero_grad();
        self.bn.zero_grad();
    }
}

/// Classifier head: flatten+linear (VGG) or global-average-pool+linear
/// (ResNet).
#[derive(Debug, Clone)]
pub enum Head {
    /// Flatten then linear.
    FlattenLinear {
        /// The flatten layer.
        flatten: Flatten,
        /// The classifier.
        linear: Linear,
    },
    /// Global average pool then linear.
    GapLinear {
        /// The pooling layer.
        gap: GlobalAvgPool,
        /// The classifier.
        linear: Linear,
    },
}

impl Head {
    /// Re-pins the head's layers to a compute backend.
    pub fn set_backend(&mut self, kind: BackendKind) {
        match self {
            Head::FlattenLinear { flatten, linear } => {
                flatten.set_backend(kind);
                linear.set_backend(kind);
            }
            Head::GapLinear { gap, linear } => {
                gap.set_backend(kind);
                linear.set_backend(kind);
            }
        }
    }

    /// Builds a head of the given kind.
    pub fn new<R: Rng + ?Sized>(
        kind: HeadSpec,
        in_features: usize,
        classes: usize,
        rng: &mut R,
    ) -> Self {
        match kind {
            HeadSpec::FlattenLinear => Head::FlattenLinear {
                flatten: Flatten::new(),
                linear: Linear::new(in_features, classes, rng),
            },
            HeadSpec::GapLinear => Head::GapLinear {
                gap: GlobalAvgPool::new(),
                linear: Linear::new(in_features, classes, rng),
            },
        }
    }

    /// Which [`HeadSpec`] this head implements.
    pub fn kind(&self) -> HeadSpec {
        match self {
            Head::FlattenLinear { .. } => HeadSpec::FlattenLinear,
            Head::GapLinear { .. } => HeadSpec::GapLinear,
        }
    }

    /// The classifier linear layer.
    pub fn linear(&self) -> &Linear {
        match self {
            Head::FlattenLinear { linear, .. } | Head::GapLinear { linear, .. } => linear,
        }
    }

    /// Mutable classifier access (pruning shrinks its input features).
    pub fn linear_mut(&mut self) -> &mut Linear {
        match self {
            Head::FlattenLinear { linear, .. } | Head::GapLinear { linear, .. } => linear,
        }
    }

    /// Runs the head on `[N, C, H, W]` features, producing `[N, classes]`
    /// logits.
    ///
    /// # Errors
    ///
    /// Returns shape errors for inconsistent features.
    pub fn forward(&mut self, features: &Tensor, mode: Mode) -> Result<Tensor> {
        Ok(match self {
            Head::FlattenLinear { flatten, linear } => {
                linear.forward(&flatten.forward(features, mode)?, mode)?
            }
            Head::GapLinear { gap, linear } => {
                linear.forward(&gap.forward(features, mode)?, mode)?
            }
        })
    }

    /// Backward pass matching the last training-mode forward.
    ///
    /// # Errors
    ///
    /// Returns a missing-cache error when no training forward preceded it.
    pub fn backward(&mut self, grad_logits: &Tensor) -> Result<Tensor> {
        Ok(match self {
            Head::FlattenLinear { flatten, linear } => {
                flatten.backward(&linear.backward(grad_logits)?)?
            }
            Head::GapLinear { gap, linear } => gap.backward(&linear.backward(grad_logits)?)?,
        })
    }

    /// Visits the head's trainable parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.linear_mut().visit_params(f);
    }
}

/// An executable network: a chain of [`Unit`]s and a classifier [`Head`].
#[derive(Debug, Clone)]
pub struct ChainNet {
    name: String,
    in_channels: usize,
    input_hw: (usize, usize),
    classes: usize,
    head_kind: HeadSpec,
    units: Vec<Unit>,
    head: Head,
    backend: BackendKind,
}

impl ChainNet {
    /// Instantiates a network with fresh weights from a spec.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSpec`] / skip errors for inconsistent
    /// specs.
    pub fn from_spec<R: Rng + ?Sized>(spec: &ModelSpec, rng: &mut R) -> Result<Self> {
        let traces = spec.trace()?;
        let mut units = Vec::with_capacity(spec.units.len());
        for (u, t) in spec.units.iter().zip(&traces) {
            units.push(Unit::new(t.in_channels, u.clone(), rng));
        }
        let head = Head::new(spec.head, spec.head_in_features()?, spec.classes, rng);
        Ok(ChainNet {
            backend: backend::global_kind(),
            name: spec.name.clone(),
            in_channels: spec.in_channels,
            input_hw: spec.input_hw,
            classes: spec.classes,
            head_kind: spec.head,
            units,
            head,
        })
    }

    /// The network's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// The unit chain.
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// Mutable unit access (pruning rewrites weights in place).
    pub fn units_mut(&mut self) -> &mut [Unit] {
        &mut self.units
    }

    /// The classifier head.
    pub fn head(&self) -> &Head {
        &self.head
    }

    /// Mutable head access.
    pub fn head_mut(&mut self) -> &mut Head {
        &mut self.head
    }

    /// The compute backend the network's gradient-merge arithmetic runs on
    /// (data-parallel training mirrors the chain backward with it).
    pub fn backend_kind(&self) -> BackendKind {
        self.backend
    }

    /// Re-pins every layer in the network (and the gradient-merge
    /// arithmetic) to a compute backend.
    pub fn set_backend(&mut self, kind: BackendKind) {
        self.backend = kind;
        for unit in &mut self.units {
            unit.set_backend(kind);
        }
        self.head.set_backend(kind);
    }

    /// Reconstructs the current [`ModelSpec`] from the live layer shapes, so
    /// a pruned network reports its *actual* architecture.
    pub fn spec(&self) -> ModelSpec {
        ModelSpec {
            name: self.name.clone(),
            in_channels: self.in_channels,
            input_hw: self.input_hw,
            classes: self.classes,
            units: self
                .units
                .iter()
                .map(|u| {
                    let mut s = u.spec.clone();
                    s.out_channels = u.conv.out_channels();
                    s
                })
                .collect(),
            head: self.head_kind,
        }
    }

    /// Total trainable parameter count.
    pub fn param_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p| count += p.numel());
        count
    }

    /// Whole-chain inference fast path: every unit runs its BN-folded fused
    /// forward ([`Unit::forward_inference`]), then the head. Equivalent to
    /// `forward(input, Mode::Eval)` up to f32 rounding of the folded
    /// weights. Unit outputs are only retained when a later unit consumes
    /// them through a skip connection.
    ///
    /// # Errors
    ///
    /// Returns shape errors when `input` disagrees with the network.
    pub fn predict_inference(&mut self, input: &Tensor) -> Result<Tensor> {
        let n = self.units.len();
        let mut is_skip_src = vec![false; n];
        for u in &self.units {
            if let Some(j) = u.spec.skip_from {
                is_skip_src[j] = true;
            }
        }
        let mut outs: Vec<Option<Tensor>> = (0..n).map(|_| None).collect();
        let mut x = input.clone();
        for i in 0..n {
            let skip = self.units[i].spec.skip_from.and_then(|j| outs[j].as_ref());
            let y = self.units[i].forward_inference(&x, skip, None)?;
            if is_skip_src[i] {
                outs[i] = Some(y.clone());
            }
            x = y;
        }
        self.head.forward(&x, Mode::Eval)
    }
}

impl Layer for ChainNet {
    fn forward(&mut self, input: &Tensor, mode: Mode) -> tbnet_nn::Result<Tensor> {
        self.forward_impl(input, mode).map_err(model_to_nn_error)
    }

    fn backward(&mut self, grad_out: &Tensor) -> tbnet_nn::Result<Tensor> {
        self.backward_impl(grad_out).map_err(model_to_nn_error)
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for u in &mut self.units {
            u.visit_params(f);
        }
        self.head.visit_params(f);
    }

    fn name(&self) -> &'static str {
        "ChainNet"
    }

    fn set_backend(&mut self, kind: BackendKind) {
        ChainNet::set_backend(self, kind);
    }
}

fn model_to_nn_error(e: ModelError) -> tbnet_nn::NnError {
    match e {
        ModelError::Nn(e) => e,
        ModelError::Tensor(e) => tbnet_nn::NnError::Tensor(e),
        other => tbnet_nn::NnError::Tensor(tbnet_tensor::TensorError::InvalidGeometry {
            reason: other.to_string(),
        }),
    }
}

impl ChainNet {
    fn forward_impl(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut outs: Vec<Tensor> = Vec::with_capacity(self.units.len());
        let mut x = input.clone();
        for i in 0..self.units.len() {
            let skip = self.units[i].spec.skip_from.map(|j| outs[j].clone());
            let y = self.units[i].forward(&x, skip.as_ref(), mode)?;
            outs.push(y.clone());
            x = y;
        }
        self.head.forward(&x, mode)
    }

    fn backward_impl(&mut self, grad_logits: &Tensor) -> Result<Tensor> {
        let n = self.units.len();
        let g_features = self.head.backward(grad_logits)?;
        let mut gouts: Vec<Option<Tensor>> = vec![None; n];
        gouts[n - 1] = Some(g_features);
        let mut grad_input = None;
        for i in (0..n).rev() {
            let g = gouts[i]
                .take()
                .expect("every unit output feeds the chain, so a gradient must exist");
            let ug = self.units[i].backward(&g)?;
            if let (Some(j), Some(gs)) = (self.units[i].spec.skip_from, ug.grad_skip) {
                accumulate_grad(&mut gouts[j], gs, self.backend)?;
            }
            if i > 0 {
                accumulate_grad(&mut gouts[i - 1], ug.grad_input, self.backend)?;
            } else {
                grad_input = Some(ug.grad_input);
            }
        }
        Ok(grad_input.expect("loop visits unit 0"))
    }
}

/// Accumulates `grad` into an optional gradient slot through the given
/// backend's `add_assign`. Shared by [`ChainNet`]'s sequential backward and
/// the data-parallel trainer in `tbnet-core`, so the two backward paths
/// stay arithmetically identical by construction.
///
/// # Errors
///
/// Returns a shape error when `grad` disagrees with an existing slot value.
pub fn accumulate_grad(slot: &mut Option<Tensor>, grad: Tensor, kind: BackendKind) -> Result<()> {
    match slot {
        Some(existing) => {
            kind.imp().add_assign(existing, &grad)?;
        }
        None => *slot = Some(grad),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbnet_tensor::init;

    fn vgg_like_spec() -> ModelSpec {
        ModelSpec {
            name: "mini".into(),
            in_channels: 3,
            input_hw: (8, 8),
            classes: 4,
            units: vec![
                UnitSpec::conv3x3(6, 0).with_pool(2),
                UnitSpec::conv3x3(8, 1).with_pool(2),
            ],
            head: HeadSpec::FlattenLinear,
        }
    }

    fn residual_spec() -> ModelSpec {
        ModelSpec {
            name: "res-mini".into(),
            in_channels: 3,
            input_hw: (8, 8),
            classes: 4,
            units: vec![
                UnitSpec::conv3x3(6, 0),
                UnitSpec::conv3x3(6, 1),
                UnitSpec::conv3x3(6, 0).with_skip_from(0),
            ],
            head: HeadSpec::GapLinear,
        }
    }

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut net = ChainNet::from_spec(&vgg_like_spec(), &mut rng).unwrap();
        let y = net
            .forward(&Tensor::zeros(&[2, 3, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 4]);
        assert_eq!(net.name(), "mini");
        assert_eq!(net.classes(), 4);
        assert_eq!(net.units().len(), 2);
    }

    #[test]
    fn residual_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut net = ChainNet::from_spec(&residual_spec(), &mut rng).unwrap();
        let y = net
            .forward(&Tensor::zeros(&[2, 3, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(y.dims(), &[2, 4]);
    }

    #[test]
    fn backward_numerical_check_plain() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = ChainNet::from_spec(&vgg_like_spec(), &mut rng).unwrap();
        let x = init::randn(&[1, 3, 8, 8], 0.5, &mut rng);
        let y = net.forward(&x, Mode::Train).unwrap();
        let gx = net.backward(&Tensor::ones(y.dims())).unwrap();
        assert_eq!(gx.dims(), x.dims());
        // BatchNorm with batch 1 and spatial stats still works; compare to a
        // numerical derivative of the summed logits.
        let eps = 1e-2f32;
        for &idx in &[0usize, 50, 120] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lp = net.forward_impl(&xp, Mode::Train).unwrap().sum();
            let lm = net.forward_impl(&xm, Mode::Train).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = gx.as_slice()[idx];
            assert!(
                (num - ana).abs() < 0.05 + 0.05 * ana.abs().max(num.abs()),
                "idx {idx}: num {num} vs ana {ana}"
            );
        }
    }

    #[test]
    fn backward_numerical_check_residual() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut net = ChainNet::from_spec(&residual_spec(), &mut rng).unwrap();
        let x = init::randn(&[1, 3, 8, 8], 0.5, &mut rng);
        let y = net.forward(&x, Mode::Train).unwrap();
        let gx = net.backward(&Tensor::ones(y.dims())).unwrap();
        let eps = 1e-2f32;
        for &idx in &[3usize, 77, 150] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let lp = net.forward_impl(&xp, Mode::Train).unwrap().sum();
            let lm = net.forward_impl(&xm, Mode::Train).unwrap().sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = gx.as_slice()[idx];
            assert!(
                (num - ana).abs() < 0.05 + 0.05 * ana.abs().max(num.abs()),
                "idx {idx}: num {num} vs ana {ana}"
            );
        }
    }

    #[test]
    fn spec_roundtrip_reflects_live_shapes() {
        let mut rng = StdRng::seed_from_u64(4);
        let spec = vgg_like_spec();
        let net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        let derived = net.spec();
        assert_eq!(derived.units.len(), spec.units.len());
        assert_eq!(derived.units[0].out_channels, 6);
        assert_eq!(derived.head, HeadSpec::FlattenLinear);
        assert_eq!(derived.trace().unwrap().len(), 2);
    }

    #[test]
    fn param_count_matches_descriptor() {
        let mut rng = StdRng::seed_from_u64(5);
        let spec = vgg_like_spec();
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        assert_eq!(net.param_count(), spec.param_count().unwrap());
    }

    #[test]
    fn unit_skip_gradient_flows() {
        // A unit given a skip input must report a skip gradient.
        let mut rng = StdRng::seed_from_u64(6);
        let mut unit = Unit::new(2, UnitSpec::conv3x3(2, 0), &mut rng);
        let x = init::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let s = init::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = unit.forward(&x, Some(&s), Mode::Train).unwrap();
        let grads = unit.backward(&Tensor::ones(y.dims())).unwrap();
        assert!(grads.grad_skip.is_some());
        assert_eq!(grads.grad_input.dims(), x.dims());

        // Without a skip there is no skip gradient.
        let y = unit.forward(&x, None, Mode::Train).unwrap();
        let grads = unit.backward(&Tensor::ones(y.dims())).unwrap();
        assert!(grads.grad_skip.is_none());
    }

    #[test]
    fn unit_rejects_bad_skip_shape() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut unit = Unit::new(2, UnitSpec::conv3x3(2, 0), &mut rng);
        let x = Tensor::zeros(&[1, 2, 4, 4]);
        let bad_skip = Tensor::zeros(&[1, 3, 4, 4]);
        assert!(unit.forward(&x, Some(&bad_skip), Mode::Train).is_err());
    }

    #[test]
    fn accessors_allow_pruning_edits() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut net = ChainNet::from_spec(&vgg_like_spec(), &mut rng).unwrap();
        assert_eq!(net.units()[0].out_channels(), 6);
        net.units_mut()[0]
            .conv_mut()
            .set_weight(Tensor::zeros(&[4, 3, 3, 3]));
        net.units_mut()[0].sync_spec_channels();
        assert_eq!(net.spec().units[0].out_channels, 4);
        assert_eq!(net.head().linear().out_features(), 4);
        net.units_mut()[0].set_skip_from(Some(0));
        assert_eq!(net.units()[0].spec().skip_from, Some(0));
    }

    #[test]
    fn training_decreases_loss_on_toy_task() {
        use tbnet_nn::loss::softmax_cross_entropy;
        use tbnet_nn::optim::Sgd;

        let mut rng = StdRng::seed_from_u64(9);
        let spec = ModelSpec {
            name: "toy".into(),
            in_channels: 1,
            input_hw: (6, 6),
            classes: 2,
            units: vec![UnitSpec::conv3x3(4, 0).with_pool(2)],
            head: HeadSpec::FlattenLinear,
        };
        let mut net = ChainNet::from_spec(&spec, &mut rng).unwrap();
        // Class 0: bright top half. Class 1: bright bottom half.
        let mut images = Tensor::zeros(&[8, 1, 6, 6]);
        let mut labels = Vec::new();
        for i in 0..8 {
            let label = i % 2;
            labels.push(label);
            for y in 0..6 {
                for x in 0..6 {
                    let bright = if label == 0 { y < 3 } else { y >= 3 };
                    *images.at_mut(&[i, 0, y, x]).unwrap() = if bright { 1.0 } else { -1.0 };
                }
            }
        }
        let sgd = Sgd::new(0.05, 0.9, 0.0).unwrap();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..30 {
            net.zero_grad();
            let logits = net.forward(&images, Mode::Train).unwrap();
            let out = softmax_cross_entropy(&logits, &labels).unwrap();
            net.backward(&out.grad).unwrap();
            sgd.step(&mut net);
            first.get_or_insert(out.loss);
            last = out.loss;
        }
        assert!(
            last < first.unwrap() * 0.5,
            "loss did not halve: {} -> {last}",
            first.unwrap()
        );
    }
}
