//! Declarative architecture descriptors.
//!
//! A [`ModelSpec`] is the single source of truth about a network's shape.
//! The TBNet pipeline manipulates specs directly: pruning shrinks
//! `out_channels`, rollback restores them, and the TEE cost model prices a
//! spec without instantiating weights.

use serde::{Deserialize, Serialize};

use crate::{ModelError, Result};

/// One conv → batch-norm → ReLU unit, optionally followed by max pooling and
/// optionally receiving a residual skip.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitSpec {
    /// Output channels of the convolution.
    pub out_channels: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Convolution stride.
    pub stride: usize,
    /// Zero padding on each side.
    pub pad: usize,
    /// Max-pool window applied after the activation (`None` for no pooling).
    pub pool_after: Option<usize>,
    /// Pruning group: units sharing a group are pruned with a shared channel
    /// mask, which keeps residually-connected feature maps aligned.
    pub group: usize,
    /// Residual connection: add the *output* of the referenced unit to this
    /// unit's pre-activation (post-BN) feature map. `None` for plain chains.
    /// The TBNet unsecured branch `M_R` strips these (paper §4).
    pub skip_from: Option<usize>,
    /// Depthwise convolution: one `[K, K]` kernel per channel, no
    /// cross-channel reduction (`out_channels` must equal the unit's input
    /// channels, and the unit must share its pruning group with its
    /// producer so the shared channel mask keeps the per-channel kernels
    /// aligned with their inputs).
    pub depthwise: bool,
}

impl UnitSpec {
    /// A plain 3×3 stride-1 same-padding unit — the workhorse of both VGG and
    /// ResNet bodies.
    pub fn conv3x3(out_channels: usize, group: usize) -> Self {
        UnitSpec {
            out_channels,
            kernel: 3,
            stride: 1,
            pad: 1,
            pool_after: None,
            group,
            skip_from: None,
            depthwise: false,
        }
    }

    /// A 5×5 stride-1 same-padding unit (the wide-receptive-field VGG
    /// variant; dispatches to the conv engine's direct 5×5 stencil at small
    /// geometry).
    pub fn conv5x5(out_channels: usize, group: usize) -> Self {
        UnitSpec {
            out_channels,
            kernel: 5,
            stride: 1,
            pad: 2,
            pool_after: None,
            group,
            skip_from: None,
            depthwise: false,
        }
    }

    /// A depthwise 3×3 stride-1 same-padding unit over `channels` channels.
    /// `group` must be the producing unit's pruning group (validated by
    /// [`ModelSpec::trace`]).
    pub fn depthwise3x3(channels: usize, group: usize) -> Self {
        UnitSpec {
            out_channels: channels,
            kernel: 3,
            stride: 1,
            pad: 1,
            pool_after: None,
            group,
            skip_from: None,
            depthwise: true,
        }
    }

    /// A pointwise (1×1) unit — the channel-mixing half of a depthwise-
    /// separable pair.
    pub fn conv1x1(out_channels: usize, group: usize) -> Self {
        UnitSpec {
            out_channels,
            kernel: 1,
            stride: 1,
            pad: 0,
            pool_after: None,
            group,
            skip_from: None,
            depthwise: false,
        }
    }

    /// Adds a max-pool window after this unit.
    pub fn with_pool(mut self, window: usize) -> Self {
        self.pool_after = Some(window);
        self
    }

    /// Sets the convolution stride.
    pub fn with_stride(mut self, stride: usize) -> Self {
        self.stride = stride;
        self
    }

    /// Sets the residual source unit.
    pub fn with_skip_from(mut self, from: usize) -> Self {
        self.skip_from = Some(from);
        self
    }
}

/// Classifier head placed after the last unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeadSpec {
    /// Flatten the `[C, H, W]` features and apply one linear layer (VGG).
    FlattenLinear,
    /// Global average pooling then one linear layer (ResNet).
    GapLinear,
}

/// Shape trace of one unit: channels and spatial dimensions on entry/exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UnitTrace {
    /// Input channels of the convolution.
    pub in_channels: usize,
    /// Output channels of the convolution.
    pub out_channels: usize,
    /// Spatial size entering the convolution.
    pub in_hw: (usize, usize),
    /// Spatial size after the convolution (before pooling).
    pub conv_hw: (usize, usize),
    /// Spatial size leaving the unit (after optional pooling).
    pub out_hw: (usize, usize),
}

/// A complete architecture: input geometry, a chain of units and a head.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Human-readable model name (appears in experiment tables).
    pub name: String,
    /// Input channels (3 for RGB).
    pub in_channels: usize,
    /// Input spatial size `(H, W)`.
    pub input_hw: (usize, usize),
    /// Number of output classes.
    pub classes: usize,
    /// The unit chain.
    pub units: Vec<UnitSpec>,
    /// The classifier head.
    pub head: HeadSpec,
}

impl ModelSpec {
    /// Computes the per-unit shape trace, validating geometry and skips.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSpec`] for degenerate geometry and
    /// [`ModelError::SkipShapeMismatch`] when a residual source's output
    /// shape cannot be added to a unit's conv output.
    pub fn trace(&self) -> Result<Vec<UnitTrace>> {
        if self.units.is_empty() {
            return Err(ModelError::InvalidSpec {
                reason: "model has no units".into(),
            });
        }
        if self.classes == 0 {
            return Err(ModelError::InvalidSpec {
                reason: "model has zero classes".into(),
            });
        }
        let mut traces = Vec::with_capacity(self.units.len());
        let mut in_c = self.in_channels;
        let mut hw = self.input_hw;
        for (i, u) in self.units.iter().enumerate() {
            if u.out_channels == 0 {
                return Err(ModelError::InvalidSpec {
                    reason: format!("unit {i} has zero output channels"),
                });
            }
            if u.kernel == 0 || u.stride == 0 {
                return Err(ModelError::InvalidSpec {
                    reason: format!("unit {i} has zero kernel or stride"),
                });
            }
            // A pad ≥ kernel would let whole output positions read nothing
            // but padding — geometrically representable, numerically silent
            // zeros. Previously accepted; reject it outright.
            if u.pad >= u.kernel {
                return Err(ModelError::InvalidSpec {
                    reason: format!(
                        "unit {i}: pad {} ≥ kernel {} (output columns would read only padding)",
                        u.pad, u.kernel
                    ),
                });
            }
            if u.depthwise {
                if u.out_channels != in_c {
                    return Err(ModelError::InvalidSpec {
                        reason: format!(
                            "unit {i}: depthwise out_channels {} must equal input channels {in_c}",
                            u.out_channels
                        ),
                    });
                }
                if i == 0 {
                    return Err(ModelError::InvalidSpec {
                        reason: format!(
                            "unit {i}: depthwise unit cannot be first (its channel mask must \
                             be shared with a prunable producer)"
                        ),
                    });
                }
                if self.units[i - 1].group != u.group {
                    return Err(ModelError::InvalidSpec {
                        reason: format!(
                            "unit {i}: depthwise unit must share its producer's pruning group \
                             ({} vs {})",
                            u.group,
                            self.units[i - 1].group
                        ),
                    });
                }
            }
            let conv_h = conv_out(hw.0, u.kernel, u.stride, u.pad, i)?;
            let conv_w = conv_out(hw.1, u.kernel, u.stride, u.pad, i)?;
            let mut out_hw = (conv_h, conv_w);
            if let Some(p) = u.pool_after {
                if p == 0 || conv_h < p || conv_w < p {
                    return Err(ModelError::InvalidSpec {
                        reason: format!(
                            "unit {i}: pool window {p} does not fit in {conv_h}×{conv_w}"
                        ),
                    });
                }
                out_hw = (conv_h / p, conv_w / p);
            }
            if let Some(from) = u.skip_from {
                if from >= i {
                    return Err(ModelError::SkipShapeMismatch {
                        unit: i,
                        from,
                        reason: "skip must reference an earlier unit".into(),
                    });
                }
                let src: &UnitTrace = &traces[from];
                if src.out_channels != u.out_channels {
                    return Err(ModelError::SkipShapeMismatch {
                        unit: i,
                        from,
                        reason: format!(
                            "channel mismatch: {} vs {}",
                            src.out_channels, u.out_channels
                        ),
                    });
                }
                if src.out_hw != (conv_h, conv_w) {
                    return Err(ModelError::SkipShapeMismatch {
                        unit: i,
                        from,
                        reason: format!(
                            "spatial mismatch: {:?} vs {:?}",
                            src.out_hw,
                            (conv_h, conv_w)
                        ),
                    });
                }
                if self.units[from].group != u.group {
                    return Err(ModelError::SkipShapeMismatch {
                        unit: i,
                        from,
                        reason: "residually-connected units must share a pruning group".into(),
                    });
                }
            }
            traces.push(UnitTrace {
                in_channels: in_c,
                out_channels: u.out_channels,
                in_hw: hw,
                conv_hw: (conv_h, conv_w),
                out_hw,
            });
            in_c = u.out_channels;
            hw = out_hw;
        }
        Ok(traces)
    }

    /// Feature dimension entering the classifier head.
    ///
    /// # Errors
    ///
    /// Propagates trace validation errors.
    pub fn head_in_features(&self) -> Result<usize> {
        let traces = self.trace()?;
        let last = traces.last().expect("trace is non-empty");
        Ok(match self.head {
            HeadSpec::FlattenLinear => last.out_channels * last.out_hw.0 * last.out_hw.1,
            HeadSpec::GapLinear => last.out_channels,
        })
    }

    /// Total trainable parameter count (convs without bias, BN γ/β, head
    /// weight + bias).
    ///
    /// # Errors
    ///
    /// Propagates trace validation errors.
    pub fn param_count(&self) -> Result<usize> {
        let traces = self.trace()?;
        let mut count = 0usize;
        for (u, t) in self.units.iter().zip(&traces) {
            let in_factor = if u.depthwise { 1 } else { t.in_channels };
            count += u.out_channels * in_factor * u.kernel * u.kernel; // conv
            count += 2 * u.out_channels; // BN γ and β
        }
        count += self.head_in_features()? * self.classes + self.classes;
        Ok(count)
    }

    /// Forward-pass multiply-accumulate count for one sample.
    ///
    /// # Errors
    ///
    /// Propagates trace validation errors.
    pub fn forward_macs(&self) -> Result<u64> {
        let traces = self.trace()?;
        let mut macs = 0u64;
        for (u, t) in self.units.iter().zip(&traces) {
            let in_factor = if u.depthwise { 1 } else { t.in_channels };
            let per_pos = (in_factor * u.kernel * u.kernel) as u64;
            macs += per_pos * u.out_channels as u64 * (t.conv_hw.0 * t.conv_hw.1) as u64;
        }
        macs += (self.head_in_features()? * self.classes) as u64;
        Ok(macs)
    }

    /// Largest single activation tensor (in elements) produced during a
    /// forward pass with batch size 1 — the peak-memory driver inside a TEE.
    ///
    /// # Errors
    ///
    /// Propagates trace validation errors.
    pub fn peak_activation_elems(&self) -> Result<usize> {
        let traces = self.trace()?;
        let mut peak = self.in_channels * self.input_hw.0 * self.input_hw.1;
        for t in &traces {
            peak = peak.max(t.out_channels * t.conv_hw.0 * t.conv_hw.1);
        }
        Ok(peak)
    }

    /// The number of distinct pruning groups in the spec.
    pub fn group_count(&self) -> usize {
        let mut groups: Vec<usize> = self.units.iter().map(|u| u.group).collect();
        groups.sort_unstable();
        groups.dedup();
        groups.len()
    }

    /// Returns the sub-model consisting of units `split..`, re-rooted so it
    /// can be priced or instantiated on its own — used by the DarkneTZ-style
    /// layer-partition baseline, whose TEE half is exactly such a tail.
    ///
    /// Residual skips that would cross the boundary are dropped (the
    /// partition severs them); internal skips are re-indexed.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSpec`] when `split` is out of range
    /// (`split == 0` returns a clone; `split >= units.len()` is an error) or
    /// the spec itself fails validation.
    pub fn tail(&self, split: usize) -> Result<ModelSpec> {
        if split >= self.units.len() {
            return Err(ModelError::InvalidSpec {
                reason: format!(
                    "tail split {split} out of range for {} units",
                    self.units.len()
                ),
            });
        }
        let traces = self.trace()?;
        if split == 0 {
            return Ok(self.clone());
        }
        let boundary = &traces[split - 1];
        let units = self.units[split..]
            .iter()
            .map(|u| {
                let mut u = u.clone();
                u.skip_from = u.skip_from.and_then(|from| from.checked_sub(split));
                u
            })
            .collect();
        Ok(ModelSpec {
            name: format!("{}-tail{split}", self.name),
            in_channels: boundary.out_channels,
            input_hw: boundary.out_hw,
            classes: self.classes,
            units,
            head: self.head,
        })
    }

    /// Returns a copy of this spec with every residual skip removed — the
    /// initialization of the unsecured branch `M_R` for residual victims
    /// (paper §4: "`M_R` is initialized from the main branch, excluding skip
    /// connections").
    pub fn without_skips(&self) -> ModelSpec {
        let mut spec = self.clone();
        for u in &mut spec.units {
            u.skip_from = None;
        }
        spec.name = format!("{}-noskip", self.name);
        spec
    }
}

fn conv_out(input: usize, kernel: usize, stride: usize, pad: usize, unit: usize) -> Result<usize> {
    let padded = input + 2 * pad;
    if padded < kernel {
        return Err(ModelError::InvalidSpec {
            reason: format!("unit {unit}: kernel {kernel} exceeds padded input {padded}"),
        });
    }
    Ok((padded - kernel) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain_spec() -> ModelSpec {
        ModelSpec {
            name: "test".into(),
            in_channels: 3,
            input_hw: (16, 16),
            classes: 10,
            units: vec![
                UnitSpec::conv3x3(8, 0).with_pool(2),
                UnitSpec::conv3x3(16, 1).with_pool(2),
            ],
            head: HeadSpec::FlattenLinear,
        }
    }

    #[test]
    fn trace_computes_shapes() {
        let spec = plain_spec();
        let t = spec.trace().unwrap();
        assert_eq!(t[0].in_channels, 3);
        assert_eq!(t[0].conv_hw, (16, 16));
        assert_eq!(t[0].out_hw, (8, 8));
        assert_eq!(t[1].in_channels, 8);
        assert_eq!(t[1].out_hw, (4, 4));
        assert_eq!(spec.head_in_features().unwrap(), 16 * 4 * 4);
    }

    #[test]
    fn gap_head_features_are_channels() {
        let mut spec = plain_spec();
        spec.head = HeadSpec::GapLinear;
        assert_eq!(spec.head_in_features().unwrap(), 16);
    }

    #[test]
    fn param_count_formula() {
        let spec = plain_spec();
        let expected = 8 * 3 * 9 + 16 // conv1 + bn1
            + 16 * 8 * 9 + 32 // conv2 + bn2
            + 256 * 10 + 10; // head
        assert_eq!(spec.param_count().unwrap(), expected);
    }

    #[test]
    fn macs_are_positive_and_scale_with_width() {
        let spec = plain_spec();
        let base = spec.forward_macs().unwrap();
        let mut wide = spec.clone();
        wide.units[0].out_channels = 16;
        assert!(wide.forward_macs().unwrap() > base);
    }

    #[test]
    fn peak_activation() {
        let spec = plain_spec();
        // Unit 0 conv output: 8 * 16 * 16 = 2048 dominates input 768, unit1 16*8*8=1024.
        assert_eq!(spec.peak_activation_elems().unwrap(), 2048);
    }

    #[test]
    fn skip_validation() {
        let mut spec = plain_spec();
        spec.units[0].pool_after = None;
        spec.units[1].pool_after = None;
        // Same channels + same group ⇒ valid skip.
        spec.units[1].out_channels = 8;
        spec.units[1].group = 0;
        spec.units[1].skip_from = Some(0);
        assert!(spec.trace().is_ok());
        // Channel mismatch rejected.
        let mut bad = spec.clone();
        bad.units[1].out_channels = 16;
        assert!(matches!(
            bad.trace(),
            Err(ModelError::SkipShapeMismatch { .. })
        ));
        // Group mismatch rejected.
        let mut bad = spec.clone();
        bad.units[1].group = 7;
        assert!(matches!(
            bad.trace(),
            Err(ModelError::SkipShapeMismatch { .. })
        ));
        // Forward reference rejected.
        let mut bad = spec;
        bad.units[0].skip_from = Some(1);
        assert!(bad.trace().is_err());
    }

    #[test]
    fn degenerate_specs_rejected() {
        let mut spec = plain_spec();
        spec.units.clear();
        assert!(spec.trace().is_err());
        let mut spec = plain_spec();
        spec.classes = 0;
        assert!(spec.trace().is_err());
        let mut spec = plain_spec();
        spec.units[0].out_channels = 0;
        assert!(spec.trace().is_err());
        let mut spec = plain_spec();
        spec.units[0].pool_after = Some(0);
        assert!(spec.trace().is_err());
        let mut spec = plain_spec();
        spec.units[0].kernel = 64;
        assert!(spec.trace().is_err());
    }

    #[test]
    fn without_skips_strips_all() {
        let mut spec = plain_spec();
        spec.units[0].pool_after = None;
        spec.units[1].pool_after = None;
        spec.units[1].out_channels = 8;
        spec.units[1].group = 0;
        spec.units[1].skip_from = Some(0);
        let stripped = spec.without_skips();
        assert!(stripped.units.iter().all(|u| u.skip_from.is_none()));
        assert!(stripped.name.contains("noskip"));
        // Original untouched.
        assert!(spec.units[1].skip_from.is_some());
    }

    #[test]
    fn group_count() {
        let spec = plain_spec();
        assert_eq!(spec.group_count(), 2);
    }

    #[test]
    fn tail_reroots_geometry() {
        let spec = plain_spec();
        let tail = spec.tail(1).unwrap();
        assert_eq!(tail.units.len(), 1);
        assert_eq!(tail.in_channels, 8);
        assert_eq!(tail.input_hw, (8, 8));
        assert!(tail.trace().is_ok());
        assert_eq!(tail.head_in_features().unwrap(), 16 * 4 * 4);
        // split 0 is the whole model; out-of-range rejected.
        assert_eq!(spec.tail(0).unwrap().units.len(), 2);
        assert!(spec.tail(2).is_err());
    }

    #[test]
    fn tail_drops_boundary_crossing_skips() {
        let mut spec = plain_spec();
        spec.units[0].pool_after = None;
        spec.units[1].pool_after = None;
        spec.units[1].out_channels = 8;
        spec.units[1].group = 0;
        spec.units[1].skip_from = Some(0);
        let tail = spec.tail(1).unwrap();
        assert_eq!(tail.units[0].skip_from, None);
        assert!(tail.trace().is_ok());
    }

    #[test]
    fn tail_reindexes_internal_skips() {
        let spec = ModelSpec {
            name: "t".into(),
            in_channels: 3,
            input_hw: (8, 8),
            classes: 4,
            units: vec![
                UnitSpec::conv3x3(4, 0),
                UnitSpec::conv3x3(6, 1),
                UnitSpec::conv3x3(6, 2),
                UnitSpec::conv3x3(6, 1).with_skip_from(1),
            ],
            head: HeadSpec::GapLinear,
        };
        assert!(spec.trace().is_ok());
        let tail = spec.tail(1).unwrap();
        assert_eq!(tail.units[2].skip_from, Some(0));
        assert!(tail.trace().is_ok());
    }

    #[test]
    fn builders() {
        let u = UnitSpec::conv3x3(32, 5)
            .with_pool(2)
            .with_stride(2)
            .with_skip_from(1);
        assert_eq!(u.out_channels, 32);
        assert_eq!(u.group, 5);
        assert_eq!(u.pool_after, Some(2));
        assert_eq!(u.stride, 2);
        assert_eq!(u.skip_from, Some(1));
        assert!(!u.depthwise);
        let u5 = UnitSpec::conv5x5(16, 0);
        assert_eq!((u5.kernel, u5.pad, u5.stride), (5, 2, 1));
        let dw = UnitSpec::depthwise3x3(16, 3);
        assert!(dw.depthwise);
        assert_eq!((dw.out_channels, dw.kernel, dw.pad), (16, 3, 1));
        let pw = UnitSpec::conv1x1(24, 4);
        assert_eq!((pw.kernel, pw.pad, pw.stride), (1, 0, 1));
    }

    #[test]
    fn pad_swallowing_kernel_rejected() {
        // pad ≥ kernel means border output columns read pure padding; the
        // geometry formula happily produces a size, so trace must reject it
        // explicitly.
        let mut spec = plain_spec();
        spec.units[0].pad = 3; // kernel is 3
        let err = spec.trace().unwrap_err();
        assert!(matches!(err, ModelError::InvalidSpec { .. }), "{err}");
        let mut spec = plain_spec();
        spec.units[0].kernel = 1;
        spec.units[0].pad = 1;
        assert!(spec.trace().is_err());
    }

    #[test]
    fn depthwise_channel_mismatch_rejected() {
        let mut spec = plain_spec();
        // Unit 1 enters with 8 channels; a depthwise unit must keep them.
        spec.units[1] = UnitSpec::depthwise3x3(16, 0);
        assert!(matches!(spec.trace(), Err(ModelError::InvalidSpec { .. })));
        spec.units[1] = UnitSpec::depthwise3x3(8, 0);
        assert!(spec.trace().is_ok());
    }

    #[test]
    fn depthwise_first_unit_rejected() {
        let mut spec = plain_spec();
        spec.units[0] = UnitSpec::depthwise3x3(3, 0);
        assert!(matches!(spec.trace(), Err(ModelError::InvalidSpec { .. })));
    }

    #[test]
    fn depthwise_group_split_rejected() {
        let mut spec = plain_spec();
        // Producer is group 0; a depthwise unit in its own group would prune
        // its kernels independently of its inputs.
        spec.units[1] = UnitSpec::depthwise3x3(8, 9);
        assert!(matches!(spec.trace(), Err(ModelError::InvalidSpec { .. })));
    }

    #[test]
    fn depthwise_param_and_mac_counts_drop_the_channel_factor() {
        let mut spec = plain_spec();
        spec.units[1] = UnitSpec::depthwise3x3(8, 0).with_pool(2);
        let expected = 8 * 3 * 9 + 16 // conv1 + bn1
            + 8 * 9 + 16 // depthwise conv2 ([8,1,3,3]) + bn2
            + 8 * 4 * 4 * 10 + 10; // head
        assert_eq!(spec.param_count().unwrap(), expected);
        let dense_macs = plain_spec().forward_macs().unwrap();
        assert!(spec.forward_macs().unwrap() < dense_macs);
    }
}
