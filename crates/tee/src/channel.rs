//! A type-enforced one-way REE→TEE channel.
//!
//! The paper's second design requirement is a *one-way context switch*: data
//! may flow from the rich world into the secure world, never back (apart from
//! the final classification result, which is returned to the user by the TA
//! itself). Here the direction is enforced by the type system: the REE holds
//! a [`ReeSender`], which has no receive method, and the TEE holds a
//! [`TeeReceiver`], which has no send method. There is no way to construct
//! the reverse pair.
//!
//! Two flavors exist:
//!
//! * [`one_way`] — unbounded, as the single-threaded
//!   `deploy::run_split_inference` uses it (the sender fills the queue
//!   completely before the receiver drains it, so a bound would deadlock);
//! * [`one_way_bounded`] — capacity-limited shared memory for the concurrent
//!   serving runtime: [`ReeSender::send`] blocks when the secure world falls
//!   behind (backpressure instead of unbounded queue growth), and
//!   [`ReeSender::send_timeout`] / [`TeeReceiver::recv_timeout`] bound every
//!   wait so a stalled or crashed peer is detected instead of hung on.
//!
//! Endpoint drops are tracked: once every sender is gone the receiver gets
//! [`RecvError::Disconnected`] after draining the queue, and once the
//! receiver is gone senders get their payload back as
//! [`SendError::Disconnected`] — the serving runtime's crash detection is
//! built on exactly this distinction.
//!
//! The channel also keeps transfer statistics ([`ChannelStats`]) so the
//! deployment executor can account world switches and bytes moved.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Cumulative traffic statistics of a one-way channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Number of messages sent (each models one world-switch invocation).
    pub messages: u64,
    /// Total payload bytes moved.
    pub bytes: u64,
    /// Deepest the shared-memory queue has ever been (backpressure
    /// indicator: on a bounded channel a high-water mark at the capacity
    /// means the secure world was the bottleneck).
    pub high_water: u64,
    /// Payloads that never made it into the queue: rejected by
    /// [`ReeSender::try_send`] on a full channel, abandoned by a timed-out
    /// [`ReeSender::send_timeout`], or refused because the receiver was
    /// dropped.
    pub dropped: u64,
}

/// Why a send did not deliver. The payload is handed back so the rich world
/// can retry, reroute or degrade without recomputing it.
#[derive(Debug, PartialEq, Eq)]
pub enum SendError<T> {
    /// The channel stayed full past the allowed wait (bounded channels
    /// only). The secure world is stalled or overloaded.
    TimedOut(T),
    /// The receiver endpoint was dropped; nothing will ever drain the queue.
    Disconnected(T),
}

impl<T> SendError<T> {
    /// Recovers the undelivered payload.
    pub fn into_inner(self) -> T {
        match self {
            SendError::TimedOut(v) | SendError::Disconnected(v) => v,
        }
    }
}

/// Why a blocking receive returned without a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// The queue stayed empty past the allowed wait, but senders still
    /// exist — the rich world is slow, not gone.
    TimedOut,
    /// The queue is empty and every sender has been dropped; no payload can
    /// ever arrive.
    Disconnected,
}

#[derive(Debug)]
struct State<T> {
    queue: VecDeque<(T, usize)>,
    stats: ChannelStats,
    senders: usize,
    receiver_alive: bool,
}

#[derive(Debug)]
struct Shared<T> {
    state: Mutex<State<T>>,
    /// Capacity of the shared-memory region; `None` means unbounded.
    cap: Option<usize>,
    /// Signalled when a payload is enqueued or the last sender drops.
    not_empty: Condvar,
    /// Signalled when a payload is dequeued or the receiver drops.
    not_full: Condvar,
}

/// Locks the state, recovering from poisoning: a panicking serving-runtime
/// thread (e.g. an injected TEE consumer crash) must not wedge the channel
/// for its peers — the state transitions are all single-assignment safe.
fn lock<T>(shared: &Shared<T>) -> MutexGuard<'_, State<T>> {
    shared.state.lock().unwrap_or_else(PoisonError::into_inner)
}

/// The REE endpoint: send-only.
#[derive(Debug)]
pub struct ReeSender<T> {
    shared: Arc<Shared<T>>,
}

/// The TEE endpoint: receive-only.
#[derive(Debug)]
pub struct TeeReceiver<T> {
    shared: Arc<Shared<T>>,
}

fn endpoints<T>(cap: Option<usize>) -> (ReeSender<T>, TeeReceiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            stats: ChannelStats::default(),
            senders: 1,
            receiver_alive: true,
        }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        ReeSender {
            shared: Arc::clone(&shared),
        },
        TeeReceiver { shared },
    )
}

/// Creates an unbounded one-way channel, returning the rich-world sender and
/// the secure-world receiver.
///
/// # Example
///
/// ```
/// let (tx, rx) = tbnet_tee::channel::one_way::<Vec<f32>>();
/// tx.send(vec![1.0, 2.0], 8);
/// assert_eq!(rx.recv(), Some(vec![1.0, 2.0]));
/// assert_eq!(rx.stats().messages, 1);
/// ```
pub fn one_way<T>() -> (ReeSender<T>, TeeReceiver<T>) {
    endpoints(None)
}

/// Creates a one-way channel whose shared-memory queue holds at most `cap`
/// payloads (`cap` ≥ 1). A full channel blocks [`ReeSender::send`] and
/// rejects [`ReeSender::try_send`] — the rich world experiences backpressure
/// rather than growing the queue without bound.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// use tbnet_tee::channel::{one_way_bounded, SendError};
///
/// let (tx, rx) = one_way_bounded::<u32>(1);
/// tx.send(1, 4);
/// // Queue full: a bounded wait reports the stall and returns the payload.
/// match tx.send_timeout(2, 4, Duration::from_millis(1)) {
///     Err(SendError::TimedOut(v)) => assert_eq!(v, 2),
///     other => panic!("expected timeout, got {other:?}"),
/// }
/// assert_eq!(rx.recv(), Some(1));
/// assert_eq!(rx.stats().dropped, 1);
/// ```
pub fn one_way_bounded<T>(cap: usize) -> (ReeSender<T>, TeeReceiver<T>) {
    endpoints(Some(cap.max(1)))
}

impl<T> ReeSender<T> {
    fn push(state: &mut State<T>, shared: &Shared<T>, value: T, bytes: usize) {
        state.stats.messages += 1;
        state.stats.bytes += bytes as u64;
        state.queue.push_back((value, bytes));
        state.stats.high_water = state.stats.high_water.max(state.queue.len() as u64);
        shared.not_empty.notify_one();
    }

    /// Sends a payload into the secure world, recording its size in bytes.
    ///
    /// On an unbounded channel this never blocks. On a bounded channel it
    /// blocks until space frees up; if the receiver is dropped the payload
    /// is silently counted as `dropped` (use [`ReeSender::send_timeout`]
    /// when delivery failure must be observed).
    pub fn send(&self, value: T, bytes: usize) {
        let _ = self.send_timeout(value, bytes, Duration::MAX);
    }

    /// Sends without waiting: on a full bounded channel the payload comes
    /// straight back as [`SendError::TimedOut`] and is counted as dropped.
    ///
    /// # Errors
    ///
    /// [`SendError::TimedOut`] when the queue is at capacity,
    /// [`SendError::Disconnected`] when the receiver is gone.
    pub fn try_send(&self, value: T, bytes: usize) -> Result<(), SendError<T>> {
        self.send_timeout(value, bytes, Duration::ZERO)
    }

    /// Sends, waiting at most `timeout` for queue space on a bounded
    /// channel. Timing out or a dropped receiver returns the payload to the
    /// caller and counts it in [`ChannelStats::dropped`].
    ///
    /// # Errors
    ///
    /// [`SendError::TimedOut`] when the queue stayed full for the whole
    /// wait, [`SendError::Disconnected`] when the receiver is gone.
    pub fn send_timeout(
        &self,
        value: T,
        bytes: usize,
        timeout: Duration,
    ) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut state = lock(shared);
        let deadline = Instant::now().checked_add(timeout);
        loop {
            if !state.receiver_alive {
                state.stats.dropped += 1;
                return Err(SendError::Disconnected(value));
            }
            match shared.cap {
                Some(cap) if state.queue.len() >= cap => {
                    let remaining = match deadline {
                        // `Duration::MAX` overflows `checked_add`: wait forever.
                        None => Duration::from_secs(3600),
                        Some(d) => match d.checked_duration_since(Instant::now()) {
                            Some(r) if !r.is_zero() => r,
                            _ => {
                                state.stats.dropped += 1;
                                return Err(SendError::TimedOut(value));
                            }
                        },
                    };
                    state = shared
                        .not_full
                        .wait_timeout(state, remaining)
                        .unwrap_or_else(PoisonError::into_inner)
                        .0;
                }
                _ => {
                    Self::push(&mut state, shared, value, bytes);
                    return Ok(());
                }
            }
        }
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> ChannelStats {
        lock(&self.shared).stats
    }
}

impl<T> Clone for ReeSender<T> {
    fn clone(&self) -> Self {
        lock(&self.shared).senders += 1;
        ReeSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for ReeSender<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.shared);
        state.senders -= 1;
        if state.senders == 0 {
            // Wake a receiver parked in `recv_timeout` so it can observe the
            // disconnect instead of waiting out its timeout.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> TeeReceiver<T> {
    fn pop(state: &mut State<T>, shared: &Shared<T>) -> Option<T> {
        let item = state.queue.pop_front().map(|(v, _)| v);
        if item.is_some() {
            shared.not_full.notify_one();
        }
        item
    }

    /// Receives the oldest pending payload, if any, without blocking.
    pub fn recv(&self) -> Option<T> {
        let shared = &*self.shared;
        Self::pop(&mut lock(shared), shared)
    }

    /// Blocks until a payload arrives, every sender is gone, or `timeout`
    /// elapses. Pending payloads are always drained before a disconnect is
    /// reported, so nothing sent before a sender crash is lost.
    ///
    /// Parks on a condvar — the TEE consumer thread does not spin while the
    /// rich world computes.
    ///
    /// # Errors
    ///
    /// [`RecvError::TimedOut`] when senders exist but nothing arrived in
    /// time (slow or stalled rich world), [`RecvError::Disconnected`] when
    /// the queue is empty and no sender remains (crashed or finished rich
    /// world) — the two need different recovery, so they are distinct.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut state = lock(shared);
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(v) = Self::pop(&mut state, shared) {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError::Disconnected);
            }
            let remaining = match deadline.checked_duration_since(Instant::now()) {
                Some(r) if !r.is_zero() => r,
                _ => return Err(RecvError::TimedOut),
            };
            state = shared
                .not_empty
                .wait_timeout(state, remaining)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Number of payloads waiting in the shared-memory queue.
    ///
    /// Racy by design: the value is a point-in-time snapshot that may be
    /// stale before the caller looks at it (senders and the receiver run
    /// concurrently). Use it for monitoring and capacity heuristics, never
    /// for a "will `recv` succeed?" check — that is what
    /// [`TeeReceiver::recv_timeout`]'s result is for.
    pub fn pending(&self) -> usize {
        lock(&self.shared).queue.len()
    }

    /// Whether at least one sender endpoint is still alive. Like
    /// [`TeeReceiver::pending`], a racy snapshot.
    pub fn is_connected(&self) -> bool {
        lock(&self.shared).senders > 0
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> ChannelStats {
        lock(&self.shared).stats
    }
}

impl<T> Drop for TeeReceiver<T> {
    fn drop(&mut self) {
        let mut state = lock(&self.shared);
        state.receiver_alive = false;
        // Senders blocked on a full queue must fail over, not wait forever.
        self.shared.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = one_way::<u32>();
        tx.send(1, 4);
        tx.send(2, 4);
        assert_eq!(rx.pending(), 2);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn stats_accumulate() {
        let (tx, rx) = one_way::<Vec<u8>>();
        tx.send(vec![0; 10], 10);
        tx.send(vec![0; 20], 20);
        let s = rx.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 30);
        assert_eq!(s.high_water, 2);
        assert_eq!(s.dropped, 0);
        assert_eq!(tx.stats(), s);
    }

    #[test]
    fn works_across_threads() {
        let (tx, rx) = one_way::<usize>();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i, 8);
            }
        });
        handle.join().unwrap();
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    /// Compile-time property (documented here): `TeeReceiver` has no `send`
    /// and `ReeSender` has no `recv`, so reverse traffic cannot be written.
    #[test]
    fn endpoints_are_direction_typed() {
        fn sender_only_api<T>(_s: &ReeSender<T>) {}
        fn receiver_only_api<T>(_r: &TeeReceiver<T>) {}
        let (tx, rx) = one_way::<()>();
        sender_only_api(&tx);
        receiver_only_api(&rx);
    }

    #[test]
    fn bounded_rejects_and_counts_drops() {
        let (tx, rx) = one_way_bounded::<u32>(2);
        tx.try_send(1, 4).unwrap();
        tx.try_send(2, 4).unwrap();
        match tx.try_send(3, 4) {
            Err(SendError::TimedOut(v)) => assert_eq!(v, 3),
            other => panic!("expected full-channel rejection, got {other:?}"),
        }
        let s = tx.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.dropped, 1);
        assert_eq!(s.high_water, 2);
        assert_eq!(rx.recv(), Some(1));
        // Space freed: the next try_send goes through.
        tx.try_send(3, 4).unwrap();
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), Some(3));
    }

    #[test]
    fn bounded_send_blocks_until_space() {
        let (tx, rx) = one_way_bounded::<u32>(1);
        tx.send(1, 4);
        let handle = std::thread::spawn(move || {
            // Blocks until the receiver below drains the queue.
            tx.send(2, 4);
            tx.stats()
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Some(1));
        let stats = handle.join().unwrap();
        assert_eq!(stats.messages, 2);
        assert_eq!(rx.recv_timeout(Duration::from_secs(1)).unwrap(), 2);
    }

    #[test]
    fn recv_timeout_distinguishes_timeout_from_disconnect() {
        let (tx, rx) = one_way_bounded::<u32>(4);
        // Sender alive, queue empty: a bounded wait times out.
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvError::TimedOut)
        );
        tx.send(7, 4);
        drop(tx);
        // Pending payloads drain before the disconnect is reported.
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvError::Disconnected)
        );
        assert!(!rx.is_connected());
    }

    #[test]
    fn recv_wakes_on_sender_drop() {
        let (tx, rx) = one_way::<u32>();
        let t0 = Instant::now();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            drop(tx);
        });
        // The receiver parks for up to 10 s but must wake as soon as the
        // last sender drops, not wait out the timeout.
        let r = rx.recv_timeout(Duration::from_secs(10));
        assert_eq!(r, Err(RecvError::Disconnected));
        assert!(t0.elapsed() < Duration::from_secs(5));
        handle.join().unwrap();
    }

    #[test]
    fn send_fails_fast_when_receiver_dropped() {
        let (tx, rx) = one_way_bounded::<u32>(1);
        drop(rx);
        match tx.send_timeout(1, 4, Duration::from_secs(10)) {
            Err(SendError::Disconnected(v)) => assert_eq!(v, 1),
            other => panic!("expected disconnect, got {other:?}"),
        }
        assert_eq!(tx.stats().dropped, 1);
    }

    #[test]
    fn blocked_sender_wakes_on_receiver_drop() {
        let (tx, rx) = one_way_bounded::<u32>(1);
        tx.send(1, 4);
        let handle = std::thread::spawn(move || tx.send_timeout(2, 4, Duration::from_secs(10)));
        std::thread::sleep(Duration::from_millis(20));
        let t0 = Instant::now();
        drop(rx);
        let result = handle.join().unwrap();
        assert!(matches!(result, Err(SendError::Disconnected(2))));
        assert!(t0.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn cloned_senders_all_count() {
        let (tx, rx) = one_way::<u32>();
        let tx2 = tx.clone();
        tx.send(1, 4);
        tx2.send(2, 4);
        drop(tx);
        assert!(rx.is_connected());
        drop(tx2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvError::Disconnected)
        );
    }

    #[test]
    fn high_water_tracks_backpressure() {
        let (tx, rx) = one_way_bounded::<u32>(3);
        for i in 0..3 {
            tx.send(i, 4);
        }
        for _ in 0..3 {
            rx.recv();
        }
        tx.send(9, 4);
        let s = rx.stats();
        assert_eq!(s.high_water, 3, "deepest fill was the full capacity");
        assert_eq!(s.messages, 4);
    }
}
