//! A type-enforced one-way REE→TEE channel.
//!
//! The paper's second design requirement is a *one-way context switch*: data
//! may flow from the rich world into the secure world, never back (apart from
//! the final classification result, which is returned to the user by the TA
//! itself). Here the direction is enforced by the type system: the REE holds
//! a [`ReeSender`], which has no receive method, and the TEE holds a
//! [`TeeReceiver`], which has no send method. There is no way to construct
//! the reverse pair.
//!
//! The channel also keeps transfer statistics ([`ChannelStats`]) so the
//! deployment executor can account world switches and bytes moved.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

/// Cumulative traffic statistics of a one-way channel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Number of messages sent (each models one world-switch invocation).
    pub messages: u64,
    /// Total payload bytes moved.
    pub bytes: u64,
}

#[derive(Debug)]
struct Shared<T> {
    queue: VecDeque<(T, usize)>,
    stats: ChannelStats,
}

/// The REE endpoint: send-only.
#[derive(Debug)]
pub struct ReeSender<T> {
    shared: Arc<Mutex<Shared<T>>>,
}

/// The TEE endpoint: receive-only.
#[derive(Debug)]
pub struct TeeReceiver<T> {
    shared: Arc<Mutex<Shared<T>>>,
}

/// Creates a one-way channel, returning the rich-world sender and the
/// secure-world receiver.
///
/// # Example
///
/// ```
/// let (tx, rx) = tbnet_tee::channel::one_way::<Vec<f32>>();
/// tx.send(vec![1.0, 2.0], 8);
/// assert_eq!(rx.recv(), Some(vec![1.0, 2.0]));
/// assert_eq!(rx.stats().messages, 1);
/// ```
pub fn one_way<T>() -> (ReeSender<T>, TeeReceiver<T>) {
    let shared = Arc::new(Mutex::new(Shared {
        queue: VecDeque::new(),
        stats: ChannelStats::default(),
    }));
    (
        ReeSender {
            shared: Arc::clone(&shared),
        },
        TeeReceiver { shared },
    )
}

impl<T> ReeSender<T> {
    /// Sends a payload into the secure world, recording its size in bytes.
    pub fn send(&self, value: T, bytes: usize) {
        let mut s = self.shared.lock();
        s.stats.messages += 1;
        s.stats.bytes += bytes as u64;
        s.queue.push_back((value, bytes));
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> ChannelStats {
        self.shared.lock().stats
    }
}

impl<T> TeeReceiver<T> {
    /// Receives the oldest pending payload, if any.
    pub fn recv(&self) -> Option<T> {
        self.shared.lock().queue.pop_front().map(|(v, _)| v)
    }

    /// Number of payloads waiting in the shared-memory queue.
    pub fn pending(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// Traffic statistics so far.
    pub fn stats(&self) -> ChannelStats {
        self.shared.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let (tx, rx) = one_way::<u32>();
        tx.send(1, 4);
        tx.send(2, 4);
        assert_eq!(rx.pending(), 2);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn stats_accumulate() {
        let (tx, rx) = one_way::<Vec<u8>>();
        tx.send(vec![0; 10], 10);
        tx.send(vec![0; 20], 20);
        let s = rx.stats();
        assert_eq!(s.messages, 2);
        assert_eq!(s.bytes, 30);
        assert_eq!(tx.stats(), s);
    }

    #[test]
    fn works_across_threads() {
        let (tx, rx) = one_way::<usize>();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                tx.send(i, 8);
            }
        });
        handle.join().unwrap();
        let mut got = Vec::new();
        while let Some(v) = rx.recv() {
            got.push(v);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    /// Compile-time property (documented here): `TeeReceiver` has no `send`
    /// and `ReeSender` has no `recv`, so reverse traffic cannot be written.
    #[test]
    fn endpoints_are_direction_typed() {
        fn sender_only_api<T>(_s: &ReeSender<T>) {}
        fn receiver_only_api<T>(_r: &TeeReceiver<T>) {}
        let (tx, rx) = one_way::<()>();
        sender_only_api(&tx);
        receiver_only_api(&rx);
    }
}
