//! The secure world: a budgeted container for deployed models.
//!
//! Anything *not* inside a [`SecureWorld`] is attacker-visible under the
//! paper's threat model (the attacker reads all of REE memory). The
//! simulated secure world therefore only exposes opaque [`ModelHandle`]s;
//! the weights themselves are owned by the world and there is no accessor
//! returning them.

use std::collections::HashMap;

use tbnet_models::ModelSpec;

use crate::memory::{MemoryLedger, MemoryReport};
use crate::{CostModel, Result, TeeError};

/// Opaque handle to a model loaded in the secure world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelHandle(u64);

/// How a model is deployed in the TEE, which determines its footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Deployment {
    /// The entire model runs inside the TEE (the paper's baseline).
    Baseline,
    /// Only the TBNet secure branch runs inside the TEE; a merge staging
    /// buffer is added for the incoming REE feature maps.
    SecureBranch,
    /// The secure branch serving `batch` samples per channel crossing:
    /// weights are shared but the working activations and merge staging
    /// buffers hold the whole batch. This is what the capacity planner
    /// charges when it packs batched tenants into a world.
    SecureBranchBatched(usize),
}

#[derive(Debug)]
struct Loaded {
    report: MemoryReport,
}

/// A simulated TrustZone secure world with a hard memory budget.
#[derive(Debug)]
pub struct SecureWorld {
    ledger: MemoryLedger,
    models: HashMap<u64, Loaded>,
    next_id: u64,
}

impl SecureWorld {
    /// Creates a secure world with an explicit byte budget.
    pub fn new(budget_bytes: usize) -> Self {
        SecureWorld {
            ledger: MemoryLedger::new(budget_bytes),
            models: HashMap::new(),
            next_id: 0,
        }
    }

    /// Creates a secure world sized from a [`CostModel`]'s budget.
    pub fn from_cost_model(cost: &CostModel) -> Self {
        SecureWorld::new(cost.secure_memory_budget)
    }

    /// Loads a model, charging its full footprint against the budget.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::SecureMemoryExhausted`] when the model does not
    /// fit, or spec validation errors.
    pub fn load_model(&mut self, spec: &ModelSpec, deployment: Deployment) -> Result<ModelHandle> {
        let report = match deployment {
            Deployment::Baseline => MemoryReport::for_baseline(spec)?,
            Deployment::SecureBranch => MemoryReport::for_secure_branch(spec)?,
            Deployment::SecureBranchBatched(batch) => {
                MemoryReport::for_secure_branch_batched(spec, batch)?
            }
        };
        self.ledger.allocate(report.total())?;
        let id = self.next_id;
        self.next_id += 1;
        self.models.insert(id, Loaded { report });
        Ok(ModelHandle(id))
    }

    /// Unloads a model, releasing its footprint.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::UnknownHandle`] for a stale handle.
    pub fn unload(&mut self, handle: ModelHandle) -> Result<()> {
        let loaded = self
            .models
            .remove(&handle.0)
            .ok_or(TeeError::UnknownHandle { id: handle.0 })?;
        self.ledger.release(loaded.report.total());
        Ok(())
    }

    /// Memory footprint of a loaded model.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::UnknownHandle`] for a stale handle.
    pub fn footprint(&self, handle: ModelHandle) -> Result<MemoryReport> {
        self.models
            .get(&handle.0)
            .map(|l| l.report)
            .ok_or(TeeError::UnknownHandle { id: handle.0 })
    }

    /// Unloads every model, releasing the whole budget. The serving
    /// runtime's supervisor calls this before reloading the secure branch
    /// into a restarted trusted application — a crashed TA's pool is
    /// reclaimed by the secure OS, so stale footprints must not keep
    /// charging the budget.
    pub fn unload_all(&mut self) {
        for (_, loaded) in self.models.drain() {
            self.ledger.release(loaded.report.total());
        }
    }

    /// Bytes currently allocated in secure memory.
    pub fn used(&self) -> usize {
        self.ledger.used()
    }

    /// High-water mark of secure-memory use.
    pub fn peak(&self) -> usize {
        self.ledger.peak()
    }

    /// Remaining secure-memory budget.
    pub fn available(&self) -> usize {
        self.ledger.available()
    }

    /// Configured secure-memory budget in bytes.
    pub fn budget(&self) -> usize {
        self.ledger.budget()
    }

    /// Number of models currently loaded.
    pub fn loaded_models(&self) -> usize {
        self.models.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbnet_models::vgg;

    #[test]
    fn load_and_unload_roundtrip() {
        let mut world = SecureWorld::new(64 * 1024 * 1024);
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let h = world.load_model(&spec, Deployment::Baseline).unwrap();
        assert!(world.used() > 0);
        let fp = world.footprint(h).unwrap();
        assert_eq!(fp.total(), world.used());
        world.unload(h).unwrap();
        assert_eq!(world.used(), 0);
        assert!(world.peak() > 0);
        assert!(world.unload(h).is_err());
        assert!(world.footprint(h).is_err());
    }

    #[test]
    fn budget_enforced() {
        // A 1 KiB secure world cannot hold the model.
        let mut world = SecureWorld::new(1024);
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        assert!(matches!(
            world.load_model(&spec, Deployment::Baseline),
            Err(TeeError::SecureMemoryExhausted { .. })
        ));
        assert_eq!(world.used(), 0);
    }

    #[test]
    fn secure_branch_charges_merge_buffer() {
        let mut world = SecureWorld::new(64 * 1024 * 1024);
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let hb = world.load_model(&spec, Deployment::Baseline).unwrap();
        let base = world.footprint(hb).unwrap();
        let hs = world.load_model(&spec, Deployment::SecureBranch).unwrap();
        let branch = world.footprint(hs).unwrap();
        assert_eq!(base.merge_buffer_bytes, 0);
        assert!(branch.merge_buffer_bytes > 0);
    }

    #[test]
    fn batched_deployment_scales_working_set_not_weights() {
        let mut world = SecureWorld::new(256 * 1024 * 1024);
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let h1 = world.load_model(&spec, Deployment::SecureBranch).unwrap();
        let one = world.footprint(h1).unwrap();
        let h4 = world
            .load_model(&spec, Deployment::SecureBranchBatched(4))
            .unwrap();
        let four = world.footprint(h4).unwrap();
        assert_eq!(four.weight_bytes, one.weight_bytes);
        assert_eq!(four.activation_bytes, 4 * one.activation_bytes);
        assert_eq!(four.merge_buffer_bytes, 4 * one.merge_buffer_bytes);
        // Batch 1 is exactly the unbatched deployment.
        let hb1 = world
            .load_model(&spec, Deployment::SecureBranchBatched(1))
            .unwrap();
        assert_eq!(world.footprint(hb1).unwrap(), one);
        assert_eq!(world.loaded_models(), 3);
    }

    #[test]
    fn from_cost_model_budget() {
        let cost = CostModel::raspberry_pi3();
        let world = SecureWorld::from_cost_model(&cost);
        assert_eq!(world.available(), cost.secure_memory_budget);
    }

    #[test]
    fn unload_all_reclaims_everything() {
        let mut world = SecureWorld::new(64 * 1024 * 1024);
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let h1 = world.load_model(&spec, Deployment::Baseline).unwrap();
        let _h2 = world.load_model(&spec, Deployment::SecureBranch).unwrap();
        assert!(world.used() > 0);
        world.unload_all();
        assert_eq!(world.used(), 0);
        assert!(world.unload(h1).is_err(), "handles are stale after reset");
        // The freed budget is usable again (the restart path).
        world.load_model(&spec, Deployment::SecureBranch).unwrap();
        assert!(world.used() > 0);
    }

    #[test]
    fn multiple_models_accumulate() {
        let mut world = SecureWorld::new(64 * 1024 * 1024);
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let h1 = world.load_model(&spec, Deployment::Baseline).unwrap();
        let one = world.used();
        let _h2 = world.load_model(&spec, Deployment::Baseline).unwrap();
        assert_eq!(world.used(), 2 * one);
        world.unload(h1).unwrap();
        assert_eq!(world.used(), one);
    }
}
