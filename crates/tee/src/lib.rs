//! Simulated TEE/REE execution substrate for the TBNet reproduction.
//!
//! The paper deploys on a Raspberry Pi 3B running OP-TEE (ARM TrustZone).
//! This crate replaces that hardware with an explicit, measurable model of
//! the same mechanisms:
//!
//! * [`CostModel`] — throughput/latency constants for the rich world (REE),
//!   the secure world (TEE), world switches and the shared-memory channel;
//!   the default profile is calibrated to a Raspberry-Pi-3-class device.
//! * [`MemoryLedger`] / [`SecureWorld`] — secure-memory accounting with a
//!   hard budget, the resource the paper's Fig. 3 measures.
//! * [`channel`] — a **type-enforced one-way channel**: the REE endpoint can
//!   only send and the TEE endpoint can only receive, so the "one-way context
//!   switch" design requirement of the paper holds by construction.
//! * [`executor`] — an event-driven latency simulator for (a) the baseline
//!   "entire model inside the TEE" deployment and (b) the TBNet two-branch
//!   deployment, reproducing the paper's Table 3 comparison; plus
//!   [`executor::calibrate_cost_model`], which fits a [`CostModel`] to stage
//!   times measured by the concurrent serving runtime so the simulator
//!   becomes a tested model of the real pipeline.
//! * [`fault`] — a deterministic, seeded nemesis ([`FaultPlan`]) injecting
//!   secure-world failures (aborted world switches, channel stalls, payload
//!   corruption, secure-memory exhaustion, TA crashes) for the serving
//!   runtime's recovery paths to be tested against.
//!
//! # Example
//!
//! ```
//! use tbnet_models::vgg;
//! use tbnet_tee::{executor, CostModel};
//!
//! let spec = vgg::vgg_tiny(10, 3, (16, 16));
//! let cost = CostModel::raspberry_pi3();
//! let report = executor::simulate_baseline(&spec, &cost).expect("valid spec");
//! assert!(report.total_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod executor;
pub mod fault;

mod cost;
mod error;
mod memory;
mod world;

pub use cost::CostModel;
pub use error::TeeError;
pub use executor::{
    calibrate_cost_model, simulate_baseline, simulate_partition, simulate_two_branch,
    simulate_two_branch_batched, LatencyReport, MeasuredStages,
};
pub use fault::{checksum_f32, corrupt_f32, ConsumerFault, FaultCounts, FaultKind, FaultPlan};
pub use memory::{MemoryLedger, MemoryReport};
pub use world::{Deployment, ModelHandle, SecureWorld};

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, TeeError>;
