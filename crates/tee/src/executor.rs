//! Event-driven latency simulation of the two deployments the paper compares
//! in Table 3:
//!
//! * **baseline** — the entire victim model executes inside the TEE;
//! * **TBNet** — `M_R` executes in the REE while `M_T` executes in the TEE,
//!   with a one-way feature-map transfer and an elementwise merge after every
//!   unit.
//!
//! The TBNet timeline is a two-stage pipeline: the REE streams feature maps
//! ahead while the TEE consumes them, so the critical path interleaves
//! compute, world switches and channel transfers. The simulator tracks each
//! unit's ready time explicitly instead of summing totals, which is what lets
//! crossover effects (e.g. switch-cost domination for tiny layers) show up.

use serde::{Deserialize, Serialize};

use tbnet_models::ModelSpec;

use crate::memory::BYTES_PER_ELEM;
use crate::{CostModel, Result};

/// Latency breakdown of one simulated inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// End-to-end latency in seconds.
    pub total_s: f64,
    /// Rich-world compute time (busy, not necessarily on the critical path).
    pub ree_compute_s: f64,
    /// Secure-world compute time.
    pub tee_compute_s: f64,
    /// Channel transfer time.
    pub transfer_s: f64,
    /// World-switch time.
    pub switch_s: f64,
    /// Elementwise merge time inside the TEE.
    pub merge_s: f64,
    /// Number of REE→TEE world switches.
    pub switches: u64,
}

impl LatencyReport {
    /// Sum of per-stage busy times (what the stages would cost end to end
    /// with zero pipelining).
    pub fn stage_sum_s(&self) -> f64 {
        self.ree_compute_s + self.tee_compute_s + self.transfer_s + self.switch_s + self.merge_s
    }

    /// Pipeline-overlap factor: stage busy time over critical-path time.
    /// 1.0 means fully serial; values above 1.0 measure how much stage work
    /// the pipeline hides (e.g. 1.4 = 40% of a serial schedule's time ran
    /// under the critical path). The serving runtime's validation compares
    /// its measured factor against this prediction.
    pub fn pipeline_overlap(&self) -> f64 {
        if self.total_s > 0.0 {
            self.stage_sum_s() / self.total_s
        } else {
            1.0
        }
    }

    /// Seconds the *secure world* is busy for this inference: TEE compute,
    /// merges, and world switches. Unlike `total_s` (the end-to-end critical
    /// path, much of which the REE can hide), secure-world busy time cannot
    /// be pipelined away across requests sharing one TEE — it is the
    /// capacity planner's denominator when deciding how much sustained
    /// traffic a secure world can carry.
    pub fn secure_occupancy_s(&self) -> f64 {
        self.tee_compute_s + self.merge_s + self.switch_s
    }
}

/// Per-stage wall-clock totals measured by the *real* concurrent pipeline
/// (the serving runtime), for one batch or averaged per batch. Stage timers
/// run while other stages execute concurrently, so on a contended host each
/// stage's wall time includes its share of interference — exactly what the
/// event simulator's per-stage costs model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeasuredStages {
    /// REE-side `M_R` compute per batch, seconds.
    pub ree_s: f64,
    /// TEE-side `M_T` compute (head included) per batch, seconds.
    pub tee_s: f64,
    /// Channel transfer (send-side, payload clones included) per batch.
    pub transfer_s: f64,
    /// TEE-side channel extraction / merge staging per batch.
    pub merge_s: f64,
    /// World-switch overhead per batch (per-send bookkeeping); may be ~0
    /// in-process.
    pub switch_s: f64,
}

/// Fits a [`CostModel`] to stage times measured by the concurrent serving
/// runtime, so that [`simulate_two_branch`] replays the measured run: each
/// simulated stage's total equals the measured stage total, and the
/// simulator's event structure predicts how much of it the pipeline hides.
/// Comparing the predicted [`LatencyReport::pipeline_overlap`] against the
/// runtime's measured overlap validates the simulator as a model of the
/// real pipeline (and the runtime against the simulator's Table 3 story).
///
/// `batch` is the number of samples the measured stages processed per
/// channel crossing; the per-sample MAC/byte/element counts of the specs
/// are scaled by it before fitting rates.
///
/// Stages measured at (near) zero get a very fast rate rather than a
/// division by zero — they contribute nothing to either schedule.
///
/// # Errors
///
/// Returns spec validation errors, or an invalid-spec error when the unit
/// counts disagree.
pub fn calibrate_cost_model(
    mt_spec: &ModelSpec,
    mr_spec: &ModelSpec,
    measured: &MeasuredStages,
    batch: usize,
) -> Result<CostModel> {
    if mt_spec.units.len() != mr_spec.units.len() {
        return Err(crate::TeeError::Model(
            tbnet_models::ModelError::InvalidSpec {
                reason: format!(
                    "branch unit counts disagree: M_T has {}, M_R has {}",
                    mt_spec.units.len(),
                    mr_spec.units.len()
                ),
            },
        ));
    }
    let (mt_macs, mt_out_elems, mt_head_macs) = unit_costs(mt_spec)?;
    let (mr_macs, mr_out_elems, _) = unit_costs(mr_spec)?;
    let batch = batch.max(1) as f64;

    let mr_total_macs = batch * mr_macs.iter().sum::<u64>() as f64;
    let mt_total_macs = batch * (mt_macs.iter().sum::<u64>() + mt_head_macs) as f64;
    let input_bytes =
        mt_spec.in_channels * mt_spec.input_hw.0 * mt_spec.input_hw.1 * BYTES_PER_ELEM;
    let total_bytes =
        batch * (input_bytes + mr_out_elems.iter().sum::<usize>() * BYTES_PER_ELEM) as f64;
    let merge_elems = batch * mt_out_elems.iter().sum::<usize>() as f64;
    let switches = (mr_macs.len() + 1) as f64;

    // rate = work / measured_time; unmeasurable stages get an effectively
    // free rate so they vanish from both schedules identically.
    let rate = |work: f64, seconds: f64| -> f64 {
        if work <= 0.0 {
            1e18
        } else {
            work / seconds.max(1e-9)
        }
    };
    let cost = CostModel {
        ree_macs_per_s: rate(mr_total_macs, measured.ree_s),
        tee_macs_per_s: rate(mt_total_macs, measured.tee_s),
        channel_bytes_per_s: rate(total_bytes, measured.transfer_s),
        tee_elementwise_per_s: rate(merge_elems, measured.merge_s),
        world_switch_s: (measured.switch_s / switches).max(1e-12),
        secure_memory_budget: CostModel::raspberry_pi3().secure_memory_budget,
    };
    cost.validate()?;
    Ok(cost)
}

/// Per-unit pricing of a spec: MACs and output feature-map elements.
fn unit_costs(spec: &ModelSpec) -> Result<(Vec<u64>, Vec<usize>, u64)> {
    let traces = spec.trace().map_err(crate::TeeError::Model)?;
    let mut macs = Vec::with_capacity(spec.units.len());
    let mut out_elems = Vec::with_capacity(spec.units.len());
    for (u, t) in spec.units.iter().zip(&traces) {
        let m = (t.in_channels * u.kernel * u.kernel) as u64
            * u.out_channels as u64
            * (t.conv_hw.0 * t.conv_hw.1) as u64;
        macs.push(m);
        out_elems.push(t.out_channels * t.out_hw.0 * t.out_hw.1);
    }
    let head_macs =
        (spec.head_in_features().map_err(crate::TeeError::Model)? * spec.classes) as u64;
    Ok((macs, out_elems, head_macs))
}

/// Simulates the baseline deployment: one world switch, one input transfer,
/// then the whole model inside the TEE.
///
/// # Errors
///
/// Returns cost-model or spec validation errors.
pub fn simulate_baseline(spec: &ModelSpec, cost: &CostModel) -> Result<LatencyReport> {
    cost.validate()?;
    let (macs, _, head_macs) = unit_costs(spec)?;
    let input_bytes = spec.in_channels * spec.input_hw.0 * spec.input_hw.1 * BYTES_PER_ELEM;
    let transfer_s = cost.transfer_s(input_bytes);
    let tee_compute_s = cost.tee_compute_s(macs.iter().sum::<u64>() + head_macs);
    let switch_s = cost.world_switch_s;
    Ok(LatencyReport {
        total_s: switch_s + transfer_s + tee_compute_s,
        ree_compute_s: 0.0,
        tee_compute_s,
        transfer_s,
        switch_s,
        merge_s: 0.0,
        switches: 1,
    })
}

/// Simulates the TBNet deployment: `M_R` in the REE, `M_T` in the TEE, a
/// one-way transfer + merge after every unit.
///
/// The two specs must have the same number of units (they are branch-wise
/// aligned by construction); channel counts may differ (rollback makes `M_R`
/// wider), in which case only `M_T`'s channels are merged.
///
/// # Errors
///
/// Returns cost-model or spec validation errors, or an invalid-spec error
/// when the unit counts disagree.
pub fn simulate_two_branch(
    mt_spec: &ModelSpec,
    mr_spec: &ModelSpec,
    cost: &CostModel,
) -> Result<LatencyReport> {
    cost.validate()?;
    if mt_spec.units.len() != mr_spec.units.len() {
        return Err(crate::TeeError::Model(
            tbnet_models::ModelError::InvalidSpec {
                reason: format!(
                    "branch unit counts disagree: M_T has {}, M_R has {}",
                    mt_spec.units.len(),
                    mr_spec.units.len()
                ),
            },
        ));
    }
    let (mt_macs, mt_out_elems, mt_head_macs) = unit_costs(mt_spec)?;
    let (mr_macs, mr_out_elems, _) = unit_costs(mr_spec)?;

    let input_bytes =
        mt_spec.in_channels * mt_spec.input_hw.0 * mt_spec.input_hw.1 * BYTES_PER_ELEM;

    let mut ree_compute_s = 0.0;
    let mut tee_compute_s = 0.0;
    let mut transfer_s = 0.0;
    let mut merge_s = 0.0;
    let mut switches = 1u64; // the initial input delivery

    // Event times.
    let input_arrive = cost.world_switch_s + cost.transfer_s(input_bytes);
    transfer_s += cost.transfer_s(input_bytes);
    let mut ree_done = 0.0f64; // the REE already owns the input
    let mut merged_ready = input_arrive;

    for i in 0..mt_macs.len() {
        // REE computes its unit and ships the feature map.
        let r_time = cost.ree_compute_s(mr_macs[i]);
        ree_compute_s += r_time;
        ree_done += r_time;
        let bytes = mr_out_elems[i] * BYTES_PER_ELEM;
        let t_xfer = cost.transfer_s(bytes);
        transfer_s += t_xfer;
        switches += 1;
        let arrive = ree_done + cost.world_switch_s + t_xfer;

        // TEE computes its unit from the previous merged feature map.
        let t_time = cost.tee_compute_s(mt_macs[i]);
        tee_compute_s += t_time;
        let tee_done = merged_ready + t_time;

        // Merge waits for both, then adds M_T's channel set.
        let m_time = cost.merge_s(mt_out_elems[i]);
        merge_s += m_time;
        merged_ready = tee_done.max(arrive) + m_time;
    }

    // Classifier head inside the TEE.
    let head_time = cost.tee_compute_s(mt_head_macs);
    tee_compute_s += head_time;
    let total_s = merged_ready + head_time;
    let switch_s = switches as f64 * cost.world_switch_s;

    Ok(LatencyReport {
        total_s,
        ree_compute_s,
        tee_compute_s,
        transfer_s,
        switch_s,
        merge_s,
        switches,
    })
}

/// Simulates one `batch`-sample TBNet inference: the per-sample specs are
/// priced against [`CostModel::for_batch`], so compute, transfer and merge
/// scale with the batch while each channel crossing still costs exactly one
/// world switch. The returned report describes the whole batch — divide
/// `total_s` by `batch` for per-request latency, or take
/// `batch / total_s` for the batch's throughput.
///
/// # Errors
///
/// Returns cost-model or spec validation errors, or an invalid-spec error
/// when the unit counts disagree.
///
/// # Examples
///
/// ```
/// use tbnet_models::vgg;
/// use tbnet_tee::{simulate_two_branch, simulate_two_branch_batched, CostModel};
///
/// let spec = vgg::vgg_tiny(10, 3, (16, 16));
/// let cost = CostModel::raspberry_pi3();
/// let one = simulate_two_branch(&spec, &spec, &cost).unwrap();
/// let eight = simulate_two_branch_batched(&spec, &spec, &cost, 8).unwrap();
/// // Eight samples share the per-unit world switches...
/// assert_eq!(eight.switches, one.switches);
/// // ...so the batch finishes in less than eight single-sample inferences.
/// assert!(eight.total_s < 8.0 * one.total_s);
/// ```
pub fn simulate_two_branch_batched(
    mt_spec: &ModelSpec,
    mr_spec: &ModelSpec,
    cost: &CostModel,
    batch: usize,
) -> Result<LatencyReport> {
    simulate_two_branch(mt_spec, mr_spec, &cost.for_batch(batch))
}

/// Simulates a DarkneTZ-style layer partition: units `..split` run in the
/// REE in plaintext, units `split..` plus the head run in the TEE. One
/// boundary feature map crosses into the TEE and the prediction crosses back
/// out (two world switches) — the bidirectional traffic the paper's §2.3
/// criticizes.
///
/// # Errors
///
/// Returns cost-model or spec validation errors, or an invalid-spec error
/// for an out-of-range split.
pub fn simulate_partition(
    spec: &ModelSpec,
    split: usize,
    cost: &CostModel,
) -> Result<LatencyReport> {
    cost.validate()?;
    let (macs, out_elems, head_macs) = unit_costs(spec)?;
    if split > macs.len() {
        return Err(crate::TeeError::Model(
            tbnet_models::ModelError::InvalidSpec {
                reason: format!("partition split {split} exceeds {} units", macs.len()),
            },
        ));
    }
    let ree_macs: u64 = macs[..split].iter().sum();
    let tee_macs: u64 = macs[split..].iter().sum::<u64>() + head_macs;
    let boundary_elems = if split == 0 {
        spec.in_channels * spec.input_hw.0 * spec.input_hw.1
    } else {
        out_elems[split - 1]
    };
    let in_xfer = cost.transfer_s(boundary_elems * BYTES_PER_ELEM);
    let out_xfer = cost.transfer_s(spec.classes * BYTES_PER_ELEM);
    let ree_compute_s = cost.ree_compute_s(ree_macs);
    let tee_compute_s = cost.tee_compute_s(tee_macs);
    let switches = 2u64; // into the TEE and back out with the result
    let switch_s = switches as f64 * cost.world_switch_s;
    Ok(LatencyReport {
        total_s: ree_compute_s + in_xfer + tee_compute_s + out_xfer + switch_s,
        ree_compute_s,
        tee_compute_s,
        transfer_s: in_xfer + out_xfer,
        switch_s,
        merge_s: 0.0,
        switches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbnet_models::{resnet, vgg};

    fn halved(spec: &ModelSpec) -> ModelSpec {
        let mut s = spec.clone();
        for u in &mut s.units {
            u.out_channels = (u.out_channels / 2).max(1);
        }
        s
    }

    #[test]
    fn baseline_is_positive_and_decomposes() {
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let cost = CostModel::raspberry_pi3();
        let r = simulate_baseline(&spec, &cost).unwrap();
        assert!(r.total_s > 0.0);
        assert!((r.total_s - (r.switch_s + r.transfer_s + r.tee_compute_s)).abs() < 1e-12);
        assert_eq!(r.switches, 1);
        assert_eq!(r.ree_compute_s, 0.0);
    }

    #[test]
    fn tbnet_with_pruned_mt_beats_baseline() {
        // The paper's Table 3 shape: TBNet (pruned M_T in the TEE, M_R in the
        // REE) must be faster than the whole victim inside the TEE.
        let victim = vgg::vgg_tiny(10, 3, (16, 16));
        let mt = halved(&victim);
        let mr = halved(&victim);
        let cost = CostModel::raspberry_pi3();
        let base = simulate_baseline(&victim, &cost).unwrap();
        let tb = simulate_two_branch(&mt, &mr, &cost).unwrap();
        assert!(
            tb.total_s < base.total_s,
            "tbnet {} vs baseline {}",
            tb.total_s,
            base.total_s
        );
    }

    #[test]
    fn two_branch_counts_switches_per_unit() {
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let cost = CostModel::raspberry_pi3();
        let r = simulate_two_branch(&spec, &spec, &cost).unwrap();
        assert_eq!(r.switches, spec.units.len() as u64 + 1);
        assert!(r.merge_s > 0.0);
        assert!(r.ree_compute_s > 0.0);
    }

    #[test]
    fn unit_count_mismatch_rejected() {
        let a = vgg::vgg_tiny(10, 3, (16, 16));
        let mut b = a.clone();
        b.units.pop();
        let cost = CostModel::raspberry_pi3();
        assert!(simulate_two_branch(&a, &b, &cost).is_err());
    }

    #[test]
    fn resnet_specs_simulate() {
        let spec = resnet::resnet20_tiny(10, 3, (16, 16));
        let cost = CostModel::raspberry_pi3();
        let base = simulate_baseline(&spec, &cost).unwrap();
        let tb = simulate_two_branch(&halved(&spec), &halved(&spec), &cost).unwrap();
        assert!(base.total_s > 0.0 && tb.total_s > 0.0);
    }

    #[test]
    fn wider_mr_costs_only_ree_time() {
        // Rollback widens M_R; the REE absorbs the extra compute, so total
        // latency should grow far less than REE busy time.
        let victim = vgg::vgg_tiny(10, 3, (16, 16));
        let mt = halved(&victim);
        let cost = CostModel::raspberry_pi3();
        let slim = simulate_two_branch(&mt, &mt, &cost).unwrap();
        let wide = simulate_two_branch(&mt, &victim, &cost).unwrap();
        assert!(wide.ree_compute_s > slim.ree_compute_s);
    }

    #[test]
    fn slow_channel_hurts_tbnet() {
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let mut cost = CostModel::raspberry_pi3();
        let fast = simulate_two_branch(&spec, &spec, &cost).unwrap();
        cost.channel_bytes_per_s = 1e6;
        let slow = simulate_two_branch(&spec, &spec, &cost).unwrap();
        assert!(slow.total_s > fast.total_s);
    }

    #[test]
    fn partition_interpolates_between_extremes() {
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let cost = CostModel::raspberry_pi3();
        let all_tee = simulate_partition(&spec, 0, &cost).unwrap();
        let all_ree = simulate_partition(&spec, spec.units.len(), &cost).unwrap();
        let mid = simulate_partition(&spec, 3, &cost).unwrap();
        // More REE layers → faster (REE is faster per MAC).
        assert!(all_ree.total_s < mid.total_s);
        assert!(mid.total_s < all_tee.total_s);
        assert_eq!(mid.switches, 2);
        assert!(simulate_partition(&spec, 99, &cost).is_err());
    }

    #[test]
    fn partition_all_tee_close_to_baseline() {
        // split 0 is the whole model in the TEE — same compute as the
        // baseline, plus the extra return switch/transfer.
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let cost = CostModel::raspberry_pi3();
        let part = simulate_partition(&spec, 0, &cost).unwrap();
        let base = simulate_baseline(&spec, &cost).unwrap();
        assert!((part.tee_compute_s - base.tee_compute_s).abs() < 1e-12);
        assert!(part.total_s > base.total_s);
    }

    #[test]
    fn calibrated_model_reproduces_measured_stage_totals() {
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let mt = halved(&spec);
        let measured = MeasuredStages {
            ree_s: 0.030,
            tee_s: 0.050,
            transfer_s: 0.004,
            merge_s: 0.002,
            switch_s: 0.001,
        };
        let cost = calibrate_cost_model(&mt, &spec, &measured, 1).unwrap();
        // The fitted rates are batch-invariant: total work and total time
        // both scale linearly in the batch, so a batch-8 measurement of the
        // same per-sample times yields the same cost model.
        let scaled = MeasuredStages {
            ree_s: 8.0 * measured.ree_s,
            tee_s: 8.0 * measured.tee_s,
            transfer_s: 8.0 * measured.transfer_s,
            merge_s: 8.0 * measured.merge_s,
            switch_s: measured.switch_s, // switches are per batch, not per sample
        };
        let cost8 = calibrate_cost_model(&mt, &spec, &scaled, 8).unwrap();
        assert!((cost.ree_macs_per_s - cost8.ree_macs_per_s).abs() / cost.ree_macs_per_s < 1e-9);
        assert!((cost.tee_macs_per_s - cost8.tee_macs_per_s).abs() / cost.tee_macs_per_s < 1e-9);
        assert!((cost.world_switch_s - cost8.world_switch_s).abs() / cost.world_switch_s < 1e-9);
        let r = simulate_two_branch(&mt, &spec, &cost).unwrap();
        // At batch 1 the fit is exact: simulated stage totals equal the
        // measured ones (the simulator spends each stage's whole budget).
        assert!((r.ree_compute_s - measured.ree_s).abs() / measured.ree_s < 1e-9);
        assert!((r.tee_compute_s - measured.tee_s).abs() / measured.tee_s < 1e-9);
        assert!((r.transfer_s - measured.transfer_s).abs() / measured.transfer_s < 1e-9);
        assert!((r.merge_s - measured.merge_s).abs() / measured.merge_s < 1e-9);
        assert!((r.switch_s - measured.switch_s).abs() / measured.switch_s < 1e-9);
        // What the simulator adds: the pipeline schedule. Total is shorter
        // than the serial stage sum (overlap) but at least the longest path.
        assert!(r.total_s < r.stage_sum_s());
        assert!(r.pipeline_overlap() > 1.0);
    }

    #[test]
    fn calibration_handles_zero_stages_and_mismatch() {
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let measured = MeasuredStages {
            ree_s: 0.010,
            tee_s: 0.020,
            transfer_s: 0.0,
            merge_s: 0.0,
            switch_s: 0.0,
        };
        let cost = calibrate_cost_model(&spec, &spec, &measured, 1).unwrap();
        cost.validate().unwrap();
        let r = simulate_two_branch(&spec, &spec, &cost).unwrap();
        assert!(r.total_s > 0.0 && r.total_s.is_finite());
        let mut short = spec.clone();
        short.units.pop();
        assert!(calibrate_cost_model(&short, &spec, &measured, 1).is_err());
    }

    #[test]
    fn batched_simulation_amortizes_switches() {
        let victim = vgg::vgg_tiny(10, 3, (16, 16));
        let mt = halved(&victim);
        let cost = CostModel::raspberry_pi3();
        let one = simulate_two_branch(&mt, &victim, &cost).unwrap();
        let b = 8;
        let batched = simulate_two_branch_batched(&mt, &victim, &cost, b).unwrap();
        // Same schedule structure, same switch count.
        assert_eq!(batched.switches, one.switches);
        assert_eq!(batched.switch_s, one.switch_s);
        // Work stages scale with the batch...
        assert!((batched.tee_compute_s - b as f64 * one.tee_compute_s).abs() < 1e-9);
        // ...so per-request latency and secure occupancy both improve.
        assert!(batched.total_s / (b as f64) < one.total_s);
        assert!(batched.secure_occupancy_s() / (b as f64) < one.secure_occupancy_s());
        // Occupancy is a lower bound on the critical path's secure share.
        assert!(batched.secure_occupancy_s() < batched.total_s);
    }

    #[test]
    fn overlap_factor_is_serial_for_baseline() {
        // The baseline deployment has no pipelining: switch + transfer +
        // compute happen strictly in sequence, so overlap is exactly 1.
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let cost = CostModel::raspberry_pi3();
        let r = simulate_baseline(&spec, &cost).unwrap();
        assert!((r.pipeline_overlap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn invalid_cost_model_rejected() {
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let mut cost = CostModel::raspberry_pi3();
        cost.ree_macs_per_s = -1.0;
        assert!(simulate_baseline(&spec, &cost).is_err());
        assert!(simulate_two_branch(&spec, &spec, &cost).is_err());
    }
}
