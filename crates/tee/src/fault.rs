//! Deterministic secure-world fault injection (the nemesis layer).
//!
//! A real TrustZone deployment fails in ways the happy-path simulator never
//! shows: SMC world switches abort under interrupt pressure, the shared-
//! memory channel stalls or returns scribbled pages, the TA pool runs out of
//! secure memory, and the trusted application itself can crash and be
//! restarted by the supervisor. A [`FaultPlan`] scripts those failures —
//! seeded and counter-based, so a given schedule replays identically — and
//! the serving runtime in `tbnet-core` consults it at every decision point:
//!
//! * [`FaultPlan::on_world_switch`] before each channel send (every send
//!   models one world switch) and for health probes;
//! * [`FaultPlan::on_payload_send`] when a feature map enters the channel
//!   (payload corruption, caught by the receiver's checksum);
//! * [`FaultPlan::on_consumer_payload`] when the TEE consumer picks a
//!   payload up (secure-world stalls and crashes);
//! * [`FaultPlan::load_model`] instead of [`SecureWorld::load_model`]
//!   (secure-memory exhaustion at TA start or restart).
//!
//! The plan records everything it injected ([`FaultPlan::counts`]), so tests
//! can assert both that faults actually fired and that the runtime answered
//! each one with its typed recovery.
//!
//! Checksums: feature maps crossing the channel carry [`checksum_f32`] over
//! their bit patterns; [`corrupt_f32`] is the canonical bit-flip the plan's
//! corruption fault applies. A mismatch at the receiver is reported as
//! [`TeeError::PayloadCorrupted`].

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use tbnet_models::ModelSpec;

use crate::world::{Deployment, ModelHandle, SecureWorld};
use crate::{Result, TeeError};

/// The secure-world failure modes the nemesis can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// An SMC world switch aborts; the send never happens. Transient — the
    /// correct response is bounded retry with backoff.
    WorldSwitchFailure,
    /// The secure world stops draining the channel for a while; senders see
    /// backpressure and then timeouts.
    ChannelStall,
    /// A payload crosses the channel with flipped bits; the receiver's
    /// checksum catches it.
    PayloadCorruption,
    /// `SecureWorld::load_model` fails with memory exhaustion.
    SecureMemoryExhaustion,
    /// The TEE consumer (the trusted application) dies mid-run and must be
    /// restarted by the supervisor.
    ConsumerCrash,
}

/// What the TEE consumer should suffer before processing a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsumerFault {
    /// Proceed normally.
    None,
    /// Sleep this long first (secure-world stall; builds channel
    /// backpressure).
    Stall(Duration),
    /// Die now. The supervisor is expected to restart the consumer.
    Crash,
}

/// How many faults of each kind the plan has injected so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// World switches the plan aborted.
    pub world_switch_failures: u64,
    /// Payloads the plan corrupted on send.
    pub corrupted_payloads: u64,
    /// Consumer stalls injected.
    pub stalls: u64,
    /// Consumer crashes injected.
    pub crashes: u64,
    /// Model loads failed with memory exhaustion.
    pub exhausted_loads: u64,
    /// Total world-switch attempts observed (failed or not).
    pub world_switches: u64,
    /// Total payload sends observed.
    pub payload_sends: u64,
    /// Total consumer payloads observed.
    pub consumer_payloads: u64,
    /// Total model loads observed.
    pub model_loads: u64,
}

impl FaultCounts {
    /// Total faults injected across every kind.
    pub fn total_injected(&self) -> u64 {
        self.world_switch_failures
            + self.corrupted_payloads
            + self.stalls
            + self.crashes
            + self.exhausted_loads
    }
}

/// One deterministic fault window over a per-kind operation counter:
/// operations with index in `start..start + len` (0-based) are hit.
#[derive(Debug, Clone, Copy)]
struct Window {
    start: u64,
    len: u64,
}

impl Window {
    fn hits(&self, idx: u64) -> bool {
        idx >= self.start && idx < self.start + self.len
    }
}

#[derive(Debug, Default)]
struct Inner {
    rng: u64,
    // Probabilistic faults (seeded Bernoulli per call).
    world_switch_rate: f64,
    corruption_rate: f64,
    // Deterministic windows over the per-kind counters.
    switch_outages: Vec<Window>,
    corrupt_at: Vec<u64>,
    stall_every: Option<(u64, Duration)>,
    crash_at: Vec<u64>,
    exhaust_loads_at: Vec<u64>,
    // Per-kind operation counters.
    world_switches: u64,
    payload_sends: u64,
    consumer_payloads: u64,
    model_loads: u64,
    counts: FaultCounts,
}

impl Inner {
    /// xorshift64*: deterministic, seed-stable across platforms.
    fn next_unit(&mut self) -> f64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }
}

/// A scripted, replayable schedule of secure-world faults. Cloning yields a
/// handle to the *same* schedule (counters included) so every runtime thread
/// consults one shared nemesis.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Arc<Mutex<Inner>>,
}

impl FaultPlan {
    /// A plan that never injects anything (the healthy baseline).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan with a seed for its probabilistic faults. The same
    /// seed and call sequence replays the same fault decisions.
    pub fn seeded(seed: u64) -> Self {
        let plan = FaultPlan::default();
        // 0 is xorshift's absorbing state; displace it like SplitMix does.
        plan.lock().rng = seed.wrapping_mul(2).wrapping_add(0x9E37_79B9_7F4A_7C15) | 1;
        plan
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Every world switch fails independently with probability `p`.
    #[must_use]
    pub fn with_world_switch_failure_rate(self, p: f64) -> Self {
        self.lock().world_switch_rate = p.clamp(0.0, 1.0);
        self
    }

    /// World switches `start..start + len` (0-based attempt index) fail
    /// deterministically — an outage burst. Multiple windows may overlap.
    #[must_use]
    pub fn with_world_switch_outage(self, start: u64, len: u64) -> Self {
        self.lock().switch_outages.push(Window { start, len });
        self
    }

    /// Every payload send is corrupted independently with probability `p`.
    #[must_use]
    pub fn with_corruption_rate(self, p: f64) -> Self {
        self.lock().corruption_rate = p.clamp(0.0, 1.0);
        self
    }

    /// Payload send number `n` (0-based) is corrupted deterministically.
    #[must_use]
    pub fn with_corrupt_payload_at(self, n: u64) -> Self {
        self.lock().corrupt_at.push(n);
        self
    }

    /// The consumer stalls for `d` before every `n`-th payload it picks up.
    #[must_use]
    pub fn with_consumer_stall_every(self, n: u64, d: Duration) -> Self {
        self.lock().stall_every = Some((n.max(1), d));
        self
    }

    /// The consumer crashes when it picks up payload number `n` (0-based,
    /// counted across restarts). One-shot per scheduled index.
    #[must_use]
    pub fn with_consumer_crash_at(self, n: u64) -> Self {
        self.lock().crash_at.push(n);
        self
    }

    /// Model load number `n` (0-based) fails with secure-memory exhaustion
    /// — a TA start or restart that cannot get its pool.
    #[must_use]
    pub fn with_exhausted_load_at(self, n: u64) -> Self {
        self.lock().exhaust_loads_at.push(n);
        self
    }

    /// Consulted before each world switch (channel send or health probe).
    /// Returns `true` when this switch fails; the caller should back off
    /// and retry a bounded number of times.
    pub fn on_world_switch(&self) -> bool {
        let mut inner = self.lock();
        let idx = inner.world_switches;
        inner.world_switches += 1;
        inner.counts.world_switches += 1;
        let outage = inner.switch_outages.iter().any(|w| w.hits(idx));
        let random = inner.world_switch_rate > 0.0 && {
            let p = inner.world_switch_rate;
            inner.next_unit() < p
        };
        if outage || random {
            inner.counts.world_switch_failures += 1;
            true
        } else {
            false
        }
    }

    /// Consulted when a payload enters the channel. Returns `true` when its
    /// bits should be flipped (the sender-side nemesis scribbling shared
    /// memory); the receiver's checksum is expected to catch it.
    pub fn on_payload_send(&self) -> bool {
        let mut inner = self.lock();
        let idx = inner.payload_sends;
        inner.payload_sends += 1;
        inner.counts.payload_sends += 1;
        let scheduled = inner.corrupt_at.contains(&idx);
        let random = inner.corruption_rate > 0.0 && {
            let p = inner.corruption_rate;
            inner.next_unit() < p
        };
        if scheduled || random {
            inner.counts.corrupted_payloads += 1;
            true
        } else {
            false
        }
    }

    /// Consulted by the TEE consumer before processing each payload.
    pub fn on_consumer_payload(&self) -> ConsumerFault {
        let mut inner = self.lock();
        let idx = inner.consumer_payloads;
        inner.consumer_payloads += 1;
        inner.counts.consumer_payloads += 1;
        if let Some(pos) = inner.crash_at.iter().position(|&n| n == idx) {
            inner.crash_at.swap_remove(pos);
            inner.counts.crashes += 1;
            return ConsumerFault::Crash;
        }
        if let Some((every, d)) = inner.stall_every {
            if idx % every == every - 1 {
                inner.counts.stalls += 1;
                return ConsumerFault::Stall(d);
            }
        }
        ConsumerFault::None
    }

    /// Loads `spec` into `world`, injecting secure-memory exhaustion when
    /// the schedule says this load fails.
    ///
    /// # Errors
    ///
    /// [`TeeError::SecureMemoryExhausted`] when injected (or genuinely out
    /// of budget), plus spec validation errors from the real load.
    pub fn load_model(
        &self,
        world: &mut SecureWorld,
        spec: &ModelSpec,
        deployment: Deployment,
    ) -> Result<ModelHandle> {
        {
            let mut inner = self.lock();
            let idx = inner.model_loads;
            inner.model_loads += 1;
            inner.counts.model_loads += 1;
            if inner.exhaust_loads_at.contains(&idx) {
                inner.counts.exhausted_loads += 1;
                return Err(TeeError::SecureMemoryExhausted {
                    requested: world.available() + 1,
                    available: world.available(),
                });
            }
        }
        world.load_model(spec, deployment)
    }

    /// Everything injected (and observed) so far.
    pub fn counts(&self) -> FaultCounts {
        self.lock().counts
    }
}

/// FNV-1a over the bit patterns of `data` — the integrity check payloads
/// carry across the one-way channel. Bit-exact and byte-order independent
/// across platforms (the fold is over `u32` bit patterns, not raw memory).
pub fn checksum_f32(data: &[f32]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &v in data {
        let bits = v.to_bits();
        for shift in [0u32, 8, 16, 24] {
            h ^= u64::from((bits >> shift) & 0xFF);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

/// The canonical corruption: flips one mantissa bit of one element, chosen
/// by `salt` — a single-event upset in shared memory. Guaranteed to change
/// [`checksum_f32`] for non-empty data.
pub fn corrupt_f32(data: &mut [f32], salt: u64) {
    if data.is_empty() {
        return;
    }
    let idx = (salt as usize) % data.len();
    let bit = 1u32 << (salt % 23) as u32; // stay inside the mantissa
    data[idx] = f32::from_bits(data[idx].to_bits() ^ bit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbnet_models::vgg;

    #[test]
    fn none_plan_injects_nothing() {
        let plan = FaultPlan::none();
        for _ in 0..100 {
            assert!(!plan.on_world_switch());
            assert!(!plan.on_payload_send());
            assert_eq!(plan.on_consumer_payload(), ConsumerFault::None);
        }
        assert_eq!(plan.counts().total_injected(), 0);
        assert_eq!(plan.counts().world_switches, 100);
    }

    #[test]
    fn outage_window_is_deterministic() {
        let plan = FaultPlan::seeded(1).with_world_switch_outage(3, 2);
        let hits: Vec<bool> = (0..8).map(|_| plan.on_world_switch()).collect();
        assert_eq!(
            hits,
            vec![false, false, false, true, true, false, false, false]
        );
        assert_eq!(plan.counts().world_switch_failures, 2);
    }

    #[test]
    fn seeded_rate_replays_identically() {
        let trace = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed).with_world_switch_failure_rate(0.3);
            (0..64).map(|_| plan.on_world_switch()).collect()
        };
        assert_eq!(trace(42), trace(42));
        assert_ne!(trace(42), trace(43), "different seeds diverge");
        let fired = trace(42).iter().filter(|&&b| b).count();
        assert!(fired > 0 && fired < 64, "rate 0.3 fired {fired}/64");
    }

    #[test]
    fn crash_is_one_shot_and_counted() {
        let plan = FaultPlan::seeded(7).with_consumer_crash_at(2);
        assert_eq!(plan.on_consumer_payload(), ConsumerFault::None);
        assert_eq!(plan.on_consumer_payload(), ConsumerFault::None);
        assert_eq!(plan.on_consumer_payload(), ConsumerFault::Crash);
        // Consumed: the restarted consumer does not crash again.
        for _ in 0..10 {
            assert_eq!(plan.on_consumer_payload(), ConsumerFault::None);
        }
        assert_eq!(plan.counts().crashes, 1);
    }

    #[test]
    fn stall_fires_periodically() {
        let d = Duration::from_millis(5);
        let plan = FaultPlan::seeded(7).with_consumer_stall_every(3, d);
        let faults: Vec<ConsumerFault> = (0..6).map(|_| plan.on_consumer_payload()).collect();
        assert_eq!(
            faults,
            vec![
                ConsumerFault::None,
                ConsumerFault::None,
                ConsumerFault::Stall(d),
                ConsumerFault::None,
                ConsumerFault::None,
                ConsumerFault::Stall(d),
            ]
        );
        assert_eq!(plan.counts().stalls, 2);
    }

    #[test]
    fn load_exhaustion_injected_then_clears() {
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let mut world = SecureWorld::new(64 * 1024 * 1024);
        let plan = FaultPlan::seeded(3).with_exhausted_load_at(0);
        assert!(matches!(
            plan.load_model(&mut world, &spec, Deployment::SecureBranch),
            Err(TeeError::SecureMemoryExhausted { .. })
        ));
        assert_eq!(world.used(), 0, "injected failure must not leak budget");
        let h = plan
            .load_model(&mut world, &spec, Deployment::SecureBranch)
            .expect("second load is clean");
        assert!(world.used() > 0);
        world.unload(h).unwrap();
        assert_eq!(plan.counts().exhausted_loads, 1);
        assert_eq!(plan.counts().model_loads, 2);
    }

    #[test]
    fn clones_share_one_schedule() {
        let plan = FaultPlan::seeded(5).with_world_switch_outage(1, 1);
        let other = plan.clone();
        assert!(!plan.on_world_switch());
        // The clone observes the shared counter: its first call is switch #1.
        assert!(other.on_world_switch());
        assert_eq!(plan.counts(), other.counts());
    }

    #[test]
    fn checksum_detects_canonical_corruption() {
        let mut data: Vec<f32> = (0..257).map(|i| i as f32 * 0.37 - 40.0).collect();
        let clean = checksum_f32(&data);
        assert_eq!(clean, checksum_f32(&data), "checksum is deterministic");
        for salt in 0..32 {
            let mut corrupted = data.clone();
            corrupt_f32(&mut corrupted, salt);
            assert_ne!(
                clean,
                checksum_f32(&corrupted),
                "flip with salt {salt} must change the checksum"
            );
        }
        corrupt_f32(&mut data, 9);
        assert_ne!(clean, checksum_f32(&data));
    }

    #[test]
    fn checksum_is_value_sensitive_not_length_only() {
        let a = checksum_f32(&[1.0, 2.0, 3.0]);
        let b = checksum_f32(&[1.0, 2.0, 4.0]);
        let c = checksum_f32(&[2.0, 1.0, 3.0]);
        assert_ne!(a, b);
        assert_ne!(a, c, "order matters");
    }
}
