use std::error::Error;
use std::fmt;

use tbnet_models::ModelError;

/// Error type for the simulated TEE substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TeeError {
    /// A model spec could not be priced (invalid geometry).
    Model(ModelError),
    /// An allocation would exceed the secure-memory budget.
    SecureMemoryExhausted {
        /// Bytes requested by the allocation.
        requested: usize,
        /// Bytes still available under the budget.
        available: usize,
    },
    /// A handle referenced a model that is not loaded in the secure world.
    UnknownHandle {
        /// The stale handle id.
        id: u64,
    },
    /// The cost model was configured with a non-positive rate.
    InvalidCostModel {
        /// Name of the offending field.
        field: &'static str,
    },
    /// An SMC world switch aborted (transient; the caller should retry a
    /// bounded number of times with backoff).
    WorldSwitchFailed {
        /// 1-based attempt number that failed.
        attempt: u32,
    },
    /// A payload crossed the channel with a checksum mismatch — shared
    /// memory was scribbled between send and receive.
    PayloadCorrupted {
        /// Checksum the sender computed.
        expected: u64,
        /// Checksum the receiver computed.
        got: u64,
    },
}

impl fmt::Display for TeeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TeeError::Model(e) => write!(f, "model error: {e}"),
            TeeError::SecureMemoryExhausted {
                requested,
                available,
            } => write!(
                f,
                "secure memory exhausted: requested {requested} bytes, {available} available"
            ),
            TeeError::UnknownHandle { id } => write!(f, "unknown secure-world handle {id}"),
            TeeError::InvalidCostModel { field } => {
                write!(f, "cost model field `{field}` must be positive")
            }
            TeeError::WorldSwitchFailed { attempt } => {
                write!(f, "world switch failed (attempt {attempt})")
            }
            TeeError::PayloadCorrupted { expected, got } => write!(
                f,
                "payload corrupted in transit: checksum {got:#018x} != expected {expected:#018x}"
            ),
        }
    }
}

impl Error for TeeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TeeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for TeeError {
    fn from(e: ModelError) -> Self {
        TeeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = TeeError::SecureMemoryExhausted {
            requested: 1024,
            available: 512,
        };
        assert!(e.to_string().contains("1024"));
        assert!(Error::source(&e).is_none());
        let e = TeeError::Model(ModelError::InvalidSpec { reason: "x".into() });
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TeeError>();
    }
}
