use serde::{Deserialize, Serialize};

use tbnet_models::ModelSpec;

use crate::{Result, TeeError};

/// Performance constants of a TEE-capable edge device.
///
/// The defaults ([`CostModel::raspberry_pi3`]) model a Raspberry Pi 3B with
/// OP-TEE, the paper's testbed: the secure world is slower per MAC than the
/// rich world (no NEON-optimized BLAS inside the TA, a smaller cache
/// partition and secure-memory access overheads), world switches cost tens of
/// microseconds, and REE↔TEE data moves through shared memory at a bounded
/// rate. Absolute numbers are estimates; the experiments only rely on the
/// *ratios*, which is also all the paper claims (see `EXPERIMENTS.md`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Rich-world throughput in multiply-accumulates per second.
    pub ree_macs_per_s: f64,
    /// Secure-world throughput in multiply-accumulates per second.
    pub tee_macs_per_s: f64,
    /// Latency of one REE→TEE world switch (SMC + context save/restore).
    pub world_switch_s: f64,
    /// Shared-memory channel bandwidth in bytes per second.
    pub channel_bytes_per_s: f64,
    /// Secure-world throughput for cheap elementwise ops (the feature-map
    /// merge), in elements per second.
    pub tee_elementwise_per_s: f64,
    /// Secure memory available for TA data (code excluded), in bytes.
    pub secure_memory_budget: usize,
}

impl CostModel {
    /// A Raspberry-Pi-3-class profile (BCM2837, Cortex-A53 @ 1.2 GHz,
    /// OP-TEE with a 16 MiB TA memory pool).
    pub fn raspberry_pi3() -> Self {
        CostModel {
            ree_macs_per_s: 1.2e9,
            tee_macs_per_s: 0.45e9,
            world_switch_s: 60e-6,
            channel_bytes_per_s: 400e6,
            tee_elementwise_per_s: 2.0e9,
            secure_memory_budget: 16 * 1024 * 1024,
        }
    }

    /// The same device with REE-side acceleration (NEON-optimized BLAS or a
    /// small GPU delegate): the rich world gets ~8× the scalar throughput
    /// while the secure world is unchanged — TrustZone TAs cannot use the
    /// accelerator. This models the paper's §5.3 observation that TBNet
    /// composes with any REE acceleration.
    pub fn raspberry_pi3_accelerated() -> Self {
        CostModel {
            ree_macs_per_s: 9.6e9,
            ..CostModel::raspberry_pi3()
        }
    }

    /// Validates that every rate is positive and finite.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::InvalidCostModel`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        let checks: [(&'static str, f64); 5] = [
            ("ree_macs_per_s", self.ree_macs_per_s),
            ("tee_macs_per_s", self.tee_macs_per_s),
            ("world_switch_s", self.world_switch_s),
            ("channel_bytes_per_s", self.channel_bytes_per_s),
            ("tee_elementwise_per_s", self.tee_elementwise_per_s),
        ];
        for (field, v) in checks {
            if !(v > 0.0 && v.is_finite()) {
                return Err(TeeError::InvalidCostModel { field });
            }
        }
        Ok(())
    }

    /// The same device viewed at batch granularity: every per-sample work
    /// rate is divided by `batch` so that simulating a *per-sample*
    /// [`ModelSpec`] against the returned model yields the latency of one
    /// `batch`-sample inference. The world-switch cost is left untouched —
    /// a batch crosses the REE→TEE boundary once per payload regardless of
    /// how many samples ride in it, which is exactly the amortization that
    /// makes batching attractive inside a TEE.
    ///
    /// `batch == 0` is treated as 1.
    ///
    /// # Examples
    ///
    /// ```
    /// use tbnet_tee::CostModel;
    ///
    /// let cost = CostModel::raspberry_pi3();
    /// let batched = cost.for_batch(8);
    /// // Eight samples' worth of MACs take 8x longer...
    /// assert_eq!(batched.tee_compute_s(1_000), 8.0 * cost.tee_compute_s(1_000));
    /// // ...but a world switch still costs one switch.
    /// assert_eq!(batched.world_switch_s, cost.world_switch_s);
    /// ```
    pub fn for_batch(&self, batch: usize) -> Self {
        let b = batch.max(1) as f64;
        CostModel {
            ree_macs_per_s: self.ree_macs_per_s / b,
            tee_macs_per_s: self.tee_macs_per_s / b,
            world_switch_s: self.world_switch_s,
            channel_bytes_per_s: self.channel_bytes_per_s / b,
            tee_elementwise_per_s: self.tee_elementwise_per_s / b,
            secure_memory_budget: self.secure_memory_budget,
        }
    }

    /// Seconds for the rich world to execute `macs` multiply-accumulates.
    pub fn ree_compute_s(&self, macs: u64) -> f64 {
        macs as f64 / self.ree_macs_per_s
    }

    /// Seconds for the secure world to execute `macs` multiply-accumulates.
    pub fn tee_compute_s(&self, macs: u64) -> f64 {
        macs as f64 / self.tee_macs_per_s
    }

    /// Seconds to move `bytes` through the REE→TEE shared-memory channel
    /// (excluding the world switch itself).
    pub fn transfer_s(&self, bytes: usize) -> f64 {
        bytes as f64 / self.channel_bytes_per_s
    }

    /// Seconds for the secure world to merge (elementwise-add) `elems`
    /// feature-map elements.
    pub fn merge_s(&self, elems: usize) -> f64 {
        elems as f64 / self.tee_elementwise_per_s
    }

    /// Seconds for the secure world to run an entire model once.
    ///
    /// # Errors
    ///
    /// Propagates spec validation errors.
    pub fn tee_model_s(&self, spec: &ModelSpec) -> Result<f64> {
        Ok(self.tee_compute_s(spec.forward_macs()?))
    }

    /// Seconds for the rich world to run an entire model once.
    ///
    /// # Errors
    ///
    /// Propagates spec validation errors.
    pub fn ree_model_s(&self, spec: &ModelSpec) -> Result<f64> {
        Ok(self.ree_compute_s(spec.forward_macs()?))
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::raspberry_pi3()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbnet_models::vgg;

    #[test]
    fn pi3_profile_is_valid_and_tee_is_slower() {
        let c = CostModel::raspberry_pi3();
        c.validate().unwrap();
        assert!(c.tee_macs_per_s < c.ree_macs_per_s);
        assert!(c.secure_memory_budget > 0);
    }

    #[test]
    fn compute_times_scale_linearly() {
        let c = CostModel::raspberry_pi3();
        assert!((c.ree_compute_s(2_000_000) - 2.0 * c.ree_compute_s(1_000_000)).abs() < 1e-12);
        assert!(c.tee_compute_s(1_000_000) > c.ree_compute_s(1_000_000));
    }

    #[test]
    fn invalid_models_rejected() {
        let mut c = CostModel::raspberry_pi3();
        c.tee_macs_per_s = 0.0;
        assert!(matches!(
            c.validate(),
            Err(TeeError::InvalidCostModel {
                field: "tee_macs_per_s"
            })
        ));
        let mut c = CostModel::raspberry_pi3();
        c.channel_bytes_per_s = f64::NAN;
        assert!(c.validate().is_err());
    }

    #[test]
    fn whole_model_pricing() {
        let c = CostModel::raspberry_pi3();
        let spec = vgg::vgg_tiny(10, 3, (16, 16));
        let tee = c.tee_model_s(&spec).unwrap();
        let ree = c.ree_model_s(&spec).unwrap();
        assert!(tee > ree);
        assert!(tee > 0.0 && tee.is_finite());
    }

    #[test]
    fn accelerated_profile_speeds_up_ree_only() {
        let base = CostModel::raspberry_pi3();
        let accel = CostModel::raspberry_pi3_accelerated();
        accel.validate().unwrap();
        assert!(accel.ree_macs_per_s > base.ree_macs_per_s);
        assert_eq!(accel.tee_macs_per_s, base.tee_macs_per_s);
    }

    #[test]
    fn default_is_pi3() {
        assert_eq!(CostModel::default(), CostModel::raspberry_pi3());
    }

    #[test]
    fn batched_view_scales_work_but_not_switches() {
        let cost = CostModel::raspberry_pi3();
        let batched = cost.for_batch(4);
        batched.validate().unwrap();
        assert!((batched.ree_compute_s(1_000) - 4.0 * cost.ree_compute_s(1_000)).abs() < 1e-15);
        assert!((batched.transfer_s(1_000) - 4.0 * cost.transfer_s(1_000)).abs() < 1e-12);
        assert!((batched.merge_s(1_000) - 4.0 * cost.merge_s(1_000)).abs() < 1e-12);
        assert_eq!(batched.world_switch_s, cost.world_switch_s);
        assert_eq!(batched.secure_memory_budget, cost.secure_memory_budget);
        // Batch 0 and 1 both mean "per sample".
        assert_eq!(cost.for_batch(0), cost.for_batch(1));
        assert_eq!(cost.for_batch(1), cost);
    }
}
