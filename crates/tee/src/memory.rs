//! Secure-memory accounting.
//!
//! Fig. 3 of the paper compares the TEE memory footprint of the baseline
//! (entire victim inside the TEE) against TBNet (only the pruned `M_T`
//! inside). [`MemoryLedger`] implements the budgeted allocator the
//! [`SecureWorld`](crate::SecureWorld) uses, and [`MemoryReport`] prices a
//! model spec the way a TA author would: weights + working activations +
//! the pre-merge feature-map buffer.

use serde::{Deserialize, Serialize};

use tbnet_models::ModelSpec;

use crate::{Result, TeeError};

/// Bytes per model scalar (f32).
pub const BYTES_PER_ELEM: usize = 4;

/// A budgeted byte ledger for the secure world.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryLedger {
    budget: usize,
    used: usize,
    peak: usize,
}

impl MemoryLedger {
    /// Creates a ledger with the given budget in bytes.
    pub fn new(budget: usize) -> Self {
        MemoryLedger {
            budget,
            used: 0,
            peak: 0,
        }
    }

    /// Records an allocation.
    ///
    /// # Errors
    ///
    /// Returns [`TeeError::SecureMemoryExhausted`] when the allocation would
    /// exceed the budget; the ledger is unchanged in that case.
    pub fn allocate(&mut self, bytes: usize) -> Result<()> {
        let new_used = self.used.saturating_add(bytes);
        if new_used > self.budget {
            return Err(TeeError::SecureMemoryExhausted {
                requested: bytes,
                available: self.budget - self.used,
            });
        }
        self.used = new_used;
        self.peak = self.peak.max(self.used);
        Ok(())
    }

    /// Records a release. Releasing more than is allocated clamps to zero
    /// (the simulator never does this, but a destructor must not fail).
    pub fn release(&mut self, bytes: usize) {
        self.used = self.used.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> usize {
        self.used
    }

    /// High-water mark of allocated bytes.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Configured budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Bytes still available.
    pub fn available(&self) -> usize {
        self.budget - self.used
    }
}

/// The TEE memory footprint of deploying a model, broken into the components
/// a TA author budgets for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryReport {
    /// Bytes of model weights resident in secure memory.
    pub weight_bytes: usize,
    /// Bytes of the largest live activation tensor (double-buffered:
    /// input + output of the running layer).
    pub activation_bytes: usize,
    /// Bytes of the staging buffer holding the incoming REE feature map
    /// awaiting the merge (zero for the baseline deployment).
    pub merge_buffer_bytes: usize,
}

impl MemoryReport {
    /// Total secure-memory requirement.
    pub fn total(&self) -> usize {
        self.weight_bytes + self.activation_bytes + self.merge_buffer_bytes
    }

    /// Footprint of the baseline deployment: the whole model inside the TEE.
    ///
    /// # Errors
    ///
    /// Propagates spec validation errors.
    pub fn for_baseline(spec: &ModelSpec) -> Result<Self> {
        let weight_bytes = spec.param_count()? * BYTES_PER_ELEM;
        let peak = spec.peak_activation_elems()?;
        Ok(MemoryReport {
            weight_bytes,
            // Input + output of the widest layer live simultaneously.
            activation_bytes: 2 * peak * BYTES_PER_ELEM,
            merge_buffer_bytes: 0,
        })
    }

    /// Footprint of the TBNet deployment: only the secure branch `M_T` lives
    /// in the TEE, plus one staging buffer for the incoming REE feature map.
    ///
    /// # Errors
    ///
    /// Propagates spec validation errors.
    pub fn for_secure_branch(mt_spec: &ModelSpec) -> Result<Self> {
        let weight_bytes = mt_spec.param_count()? * BYTES_PER_ELEM;
        let peak = mt_spec.peak_activation_elems()?;
        Ok(MemoryReport {
            weight_bytes,
            activation_bytes: 2 * peak * BYTES_PER_ELEM,
            // The merge staging buffer holds one feature map of the widest
            // merge point, which is bounded by the peak activation.
            merge_buffer_bytes: peak * BYTES_PER_ELEM,
        })
    }

    /// Footprint of the TBNet deployment at batch granularity: weights are
    /// shared across the batch, but the working activations and the merge
    /// staging buffer hold `batch` samples at once. This is the memory side
    /// of the batching trade-off the capacity planner searches: a larger
    /// batch amortizes world switches (see
    /// [`CostModel::for_batch`](crate::CostModel::for_batch)) at the price
    /// of a linearly larger secure working set.
    ///
    /// `batch == 0` is treated as 1 (identical to
    /// [`MemoryReport::for_secure_branch`]).
    ///
    /// # Errors
    ///
    /// Propagates spec validation errors.
    pub fn for_secure_branch_batched(mt_spec: &ModelSpec, batch: usize) -> Result<Self> {
        let per_sample = MemoryReport::for_secure_branch(mt_spec)?;
        let b = batch.max(1);
        Ok(MemoryReport {
            weight_bytes: per_sample.weight_bytes,
            activation_bytes: per_sample.activation_bytes * b,
            merge_buffer_bytes: per_sample.merge_buffer_bytes * b,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbnet_models::{resnet, vgg};

    #[test]
    fn ledger_tracks_and_enforces() {
        let mut l = MemoryLedger::new(100);
        l.allocate(60).unwrap();
        assert_eq!(l.used(), 60);
        assert_eq!(l.available(), 40);
        assert!(matches!(
            l.allocate(50),
            Err(TeeError::SecureMemoryExhausted {
                requested: 50,
                available: 40
            })
        ));
        // Failed allocation leaves state unchanged.
        assert_eq!(l.used(), 60);
        l.release(20);
        assert_eq!(l.used(), 40);
        l.allocate(50).unwrap();
        assert_eq!(l.peak(), 90);
        assert_eq!(l.budget(), 100);
    }

    #[test]
    fn release_never_underflows() {
        let mut l = MemoryLedger::new(10);
        l.release(5);
        assert_eq!(l.used(), 0);
    }

    #[test]
    fn baseline_report_scales_with_model() {
        let small = vgg::vgg_tiny(10, 3, (16, 16));
        let large = vgg::vgg18(10, 3, (32, 32));
        let rs = MemoryReport::for_baseline(&small).unwrap();
        let rl = MemoryReport::for_baseline(&large).unwrap();
        assert!(rl.total() > rs.total());
        assert!(rs.merge_buffer_bytes == 0);
        assert_eq!(
            rs.weight_bytes,
            small.param_count().unwrap() * BYTES_PER_ELEM
        );
    }

    #[test]
    fn secure_branch_report_has_merge_buffer() {
        let spec = resnet::resnet20_tiny(10, 3, (16, 16));
        let r = MemoryReport::for_secure_branch(&spec).unwrap();
        assert!(r.merge_buffer_bytes > 0);
        assert_eq!(
            r.total(),
            r.weight_bytes + r.activation_bytes + r.merge_buffer_bytes
        );
    }

    #[test]
    fn pruned_branch_uses_less_memory() {
        let full = vgg::vgg_tiny(10, 3, (16, 16));
        let mut pruned = full.clone();
        for u in &mut pruned.units {
            u.out_channels = (u.out_channels / 2).max(1);
        }
        let rf = MemoryReport::for_secure_branch(&full).unwrap();
        let rp = MemoryReport::for_secure_branch(&pruned).unwrap();
        assert!(rp.total() < rf.total());
    }
}
