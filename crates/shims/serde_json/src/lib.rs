//! Offline stand-in for `serde_json`: renders the serde shim's
//! [`serde::Value`] tree to JSON text and parses JSON text back.
//!
//! Supports the subset the workspace uses: `to_writer`, `from_reader`,
//! `to_string`, `to_string_pretty`, `from_str`. Numbers are `f64` (integers
//! exact up to 2^53); non-finite floats serialize as `null`, matching real
//! serde_json's lossy default behavior.

use std::fmt;
use std::io::{Read, Write};

use serde::{DeError, Deserialize, Serialize, Value};

/// Error type covering IO, syntax and shape mismatches.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(format!("io error: {e}"))
    }
}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_num(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Shortest roundtrip formatting of f64.
        out.push_str(&format!("{n}"));
    }
}

fn render(v: &Value, out: &mut String, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_num(*n, out),
        Value::Str(s) => escape_into(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    newline_indent(out, level + 1);
                }
                render(item, out, indent.map(|l| l + 1));
            }
            if let (Some(level), false) = (indent, items.is_empty()) {
                newline_indent(out, level);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    newline_indent(out, level + 1);
                }
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(item, out, indent.map(|l| l + 1));
            }
            if let (Some(level), false) = (indent, pairs.is_empty()) {
                newline_indent(out, level);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, level: usize) {
    out.push('\n');
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Serializes `value` as compact JSON text.
///
/// # Errors
///
/// Infallible for the shim's value model; kept fallible for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None);
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON text.
///
/// # Errors
///
/// Infallible for the shim's value model; kept fallible for API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(0));
    Ok(out)
}

/// Serializes `value` as compact JSON into `writer`.
///
/// # Errors
///
/// Returns IO errors from the writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Reads all of `reader` and parses it as a `T`.
///
/// # Errors
///
/// Returns IO, syntax or shape-mismatch errors.
pub fn from_reader<R: Read, T: for<'de> Deserialize<'de>>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns syntax or shape-mismatch errors.
pub fn from_str<T: for<'de> Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error("unexpected end of input".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected ',' or ']' at byte {}, got {:?}",
                                self.pos, other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    pairs.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        other => {
                            return Err(Error(format!(
                                "expected ',' or '}}' at byte {}, got {:?}",
                                self.pos, other as char
                            )))
                        }
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(Error(format!("unknown escape \\{}", other as char))),
                    }
                }
                _ => {
                    // Re-borrow the original UTF-8: step back and take the
                    // full multi-byte character.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid utf-8 in number".into()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number {text:?} at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert!(from_str::<bool>("true").unwrap());
        assert_eq!(from_str::<Vec<u32>>("[1, 2, 3]").unwrap(), vec![1, 2, 3]);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb".to_string());
    }

    #[test]
    fn roundtrip_nested() {
        let v: Vec<Vec<f32>> = vec![vec![1.0, 2.0], vec![], vec![-0.5]];
        let text = to_string(&v).unwrap();
        let back: Vec<Vec<f32>> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v: Vec<Option<u8>> = vec![Some(1), None];
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Vec<Option<u8>> = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("{oops}").is_err());
        assert!(from_str::<f64>("1.5 extra").is_err());
    }
}
