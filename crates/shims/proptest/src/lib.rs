//! Offline stand-in for `proptest`.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro with `pattern in strategy` arguments and an optional
//! `#![proptest_config(...)]`, range/tuple/`any`/`collection::vec`
//! strategies, and `prop_assert!`/`prop_assert_eq!`. Sampling is purely
//! random from a fixed seed (deterministic across runs); there is no
//! shrinking — a failing case panics with the normal assert message.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::ops::Range;

/// The RNG handed to strategies by the `proptest!` harness.
pub type TestRng = StdRng;

/// Builds the deterministic per-test RNG.
pub fn test_rng() -> TestRng {
    StdRng::seed_from_u64(0x7062_7465_7374_2121)
}

/// Number of sampled cases per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// How many random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E)(A, B, C, D, E, F));

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rand::RngCore::next_u64(rng) as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen_range(-1.0e12f64..1.0e12)
    }
}

/// Strategy wrapper produced by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Vectors of values from `element`, sized within `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Compares two values via their `Debug` rendering.
///
/// The shim uses this for `prop_assert_eq!` so asymmetric reference types
/// (`&Vec<T>` vs `Vec<T>`) compare without bespoke `PartialEq` impls.
pub fn debug_eq<L: Debug, R: Debug>(left: &L, right: &R) -> (bool, String, String) {
    let l = format!("{left:?}");
    let r = format!("{right:?}");
    (l == r, l, r)
}

/// Asserts a property-condition, with optional formatted context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts two values render identically under `Debug`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (eq, l, r) = $crate::debug_eq(&$left, &$right);
        assert!(
            eq,
            "property failed: {} == {}\n  left: {l}\n right: {r}",
            stringify!($left),
            stringify!($right)
        );
    }};
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ (<$crate::ProptestConfig as Default>::default()) $($rest)* }
    };
}

/// Error type carried by a property body's `Result` (mirrors proptest's
/// `TestCaseError` far enough for `return Ok(())` early exits).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::test_rng();
                for _case in 0..config.cases {
                    let ($($pat,)*) = ($($crate::Strategy::sample(&$strat, &mut rng),)*);
                    // Bodies may `return Ok(())` to skip a sampled case.
                    #[allow(clippy::redundant_closure_call)]
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            Ok(())
                        })();
                    if let Err(e) = outcome {
                        panic!("property {} failed: {}", stringify!($name), e.0);
                    }
                }
            }
        )*
    };
}

/// Glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (usize, usize)> {
        (1usize..4, 2usize..9)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_in_bounds(a in 3usize..7, b in 0u64..10) {
            prop_assert!((3..7).contains(&a));
            prop_assert!(b < 10);
        }

        #[test]
        fn tuples_and_vecs((x, y) in pair(), v in crate::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!(x < 4 && y < 9);
            prop_assert!((2..5).contains(&v.len()));
            prop_assert_eq!(&v, v.clone());
        }
    }
}
