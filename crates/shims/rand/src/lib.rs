//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: `Rng::{gen_range, gen_bool}`
//! over integer and float ranges, `SeedableRng::seed_from_u64`,
//! `rngs::StdRng` (xoshiro256++ seeded through SplitMix64) and
//! `seq::SliceRandom::shuffle`. The stream differs from crates.io rand, but
//! every consumer in this workspace only relies on determinism-per-seed, not
//! on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produces the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Element types that can be drawn uniformly from a range. The element type
/// is a trait parameter (mirroring rand 0.8) so literals like `0.0..1.0`
/// infer their type from the annotated binding.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_between(lo, hi, true, rng)
    }
}

fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    // 24 explicit mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 40) as f32 * (1.0 / 16_777_216.0)
}

fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 explicit mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore + ?Sized>(lo: f32, hi: f32, _inclusive: bool, rng: &mut R) -> f32 {
        let sample = lo + unit_f32(rng) * (hi - lo);
        // Floating-point rounding can land exactly on the excluded upper
        // bound; nudge back inside.
        if sample >= hi && sample > lo {
            f32::from_bits(sample.to_bits() - 1)
        } else {
            sample
        }
    }
}

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(lo: f64, hi: f64, _inclusive: bool, rng: &mut R) -> f64 {
        let sample = lo + unit_f64(rng) * (hi - lo);
        if sample >= hi && sample > lo {
            f64::from_bits(sample.to_bits() - 1)
        } else {
            sample
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Constructors for deterministic generators.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ with SplitMix64 seeding.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (`shuffle`).
pub mod seq {
    use super::Rng;

    /// Random reordering of slices.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        let mut c = StdRng::seed_from_u64(6);
        let va: Vec<f32> = (0..8).map(|_| a.gen_range(0.0f32..1.0)).collect();
        let vb: Vec<f32> = (0..8).map(|_| b.gen_range(0.0f32..1.0)).collect();
        let vc: Vec<f32> = (0..8).map(|_| c.gen_range(0.0f32..1.0)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&x));
            let n = rng.gen_range(3usize..7);
            assert!((3..7).contains(&n));
            let m = rng.gen_range(-2i32..=2);
            assert!((-2..=2).contains(&m));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}
