//! Offline stand-in for `parking_lot`: wraps `std::sync` primitives behind
//! parking_lot's non-poisoning API (`lock()` returns the guard directly).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Mutex with parking_lot's panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Acquires the lock, recovering from poisoning (parking_lot has no
    /// poisoning, so recovery preserves its semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader–writer lock with parking_lot's panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
