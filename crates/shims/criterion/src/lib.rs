//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Provides the API subset the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `Bencher::iter`, `BenchmarkId`, `black_box` and the
//! `criterion_group!`/`criterion_main!` macros — measuring wall-clock time
//! with warmup and reporting min/median/mean per benchmark.
//!
//! When invoked with `--test` (as `cargo test` does for `harness = false`
//! bench targets), every benchmark body runs exactly once so the suite
//! doubles as a smoke test.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Collected timing for one benchmark.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Benchmark label (group/function).
    pub name: String,
    /// Per-iteration wall-clock times, sorted ascending.
    pub times: Vec<Duration>,
}

impl Sample {
    /// Median per-iteration time.
    pub fn median(&self) -> Duration {
        self.times[self.times.len() / 2]
    }

    /// Mean per-iteration time.
    pub fn mean(&self) -> Duration {
        self.times.iter().sum::<Duration>() / self.times.len().max(1) as u32
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Mirrors real criterion's CLI hookup; the shim only detects `--test`.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(name, sample_size, self.test_mode, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    fn effective_samples(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        let samples = self.effective_samples();
        run_one(&label, samples, self.criterion.test_mode, &mut f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let samples = self.effective_samples();
        run_one(&label, samples, self.criterion.test_mode, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (reporting happens per-benchmark; kept for API parity).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    result: Option<Sample>,
    label: String,
}

impl Bencher {
    /// Times `f`, running warmup plus `sample_size` measured iterations
    /// (exactly one un-timed iteration in `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warmup: let caches/allocators settle, bounded for slow bodies.
        let warmup_deadline = Instant::now() + Duration::from_millis(200);
        for _ in 0..3 {
            black_box(f());
            if Instant::now() > warmup_deadline {
                break;
            }
        }
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.result = Some(Sample {
            name: self.label.clone(),
            times,
        });
    }
}

fn run_one(label: &str, samples: usize, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        test_mode,
        result: None,
        label: label.to_string(),
    };
    f(&mut bencher);
    if test_mode {
        println!("bench {label}: ok (test mode)");
    } else if let Some(sample) = bencher.result {
        println!(
            "bench {label}: median {} | mean {} | min {} ({} samples)",
            fmt_duration(sample.median()),
            fmt_duration(sample.mean()),
            fmt_duration(sample.times[0]),
            sample.times.len(),
        );
    }
}

/// Declares a function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
