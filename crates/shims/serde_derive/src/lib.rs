//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the offline serde
//! shim.
//!
//! Written against `proc_macro` alone (no `syn`/`quote`, which are
//! unavailable without a registry). Supports the shapes this workspace
//! derives on: non-generic structs with named fields and enums whose
//! variants are all unit variants. Anything else produces a compile error
//! naming the limitation rather than silently misbehaving.
//!
//! Field types never need to be parsed: the generated code calls trait
//! methods (`to_value` / `from_value`) and lets type inference resolve the
//! implementation from the struct definition itself.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Struct { name: String, fields: Vec<String> },
    Tuple { name: String, arity: usize },
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Splits a brace-group body on top-level commas, tracking `<...>` nesting so
/// generic arguments like `HashMap<String, f32>` stay in one chunk.
fn split_top_commas(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                // A `>` closing a generic, unless it terminates a `->`.
                '>' if !prev_dash => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    chunks.push(std::mem::take(&mut current));
                    prev_dash = false;
                    continue;
                }
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Strips leading `#[...]` attributes and a `pub` / `pub(...)` prefix,
/// returning the first identifier that follows (a field or variant name).
fn leading_ident(chunk: &[TokenTree]) -> Option<(String, usize)> {
    let mut i = 0;
    while i < chunk.len() {
        match &chunk[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                i += 2; // '#' plus the bracket group
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => return Some((id.to_string(), i)),
            _ => return None,
        }
    }
    None
}

fn parse_shape(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (doc comments survive into derive input).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            _ => break,
        }
    }
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generics (type {name})"
            ));
        }
    }
    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                if kind != "struct" {
                    return Err(format!("unexpected parenthesized body in {kind} {name}"));
                }
                let body_tokens: Vec<TokenTree> = g.stream().into_iter().collect();
                let arity = split_top_commas(&body_tokens)
                    .iter()
                    .filter(|c| !c.is_empty())
                    .count();
                return Ok(Shape::Tuple { name, arity });
            }
            Some(_) => i += 1,
            None => return Err(format!("no braced body found for type {name}")),
        }
    };
    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    let chunks = split_top_commas(&body_tokens);
    match kind.as_str() {
        "struct" => {
            let mut fields = Vec::new();
            for chunk in &chunks {
                if chunk.is_empty() {
                    continue;
                }
                let (ident, at) = leading_ident(chunk)
                    .ok_or_else(|| format!("unparseable field in struct {name}"))?;
                match chunk.get(at + 1) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => fields.push(ident),
                    _ => {
                        return Err(format!(
                            "struct {name}: field `{ident}` is not `name: Type` shaped"
                        ))
                    }
                }
            }
            Ok(Shape::Struct { name, fields })
        }
        "enum" => {
            let mut variants = Vec::new();
            for chunk in &chunks {
                if chunk.is_empty() {
                    continue;
                }
                let (ident, at) = leading_ident(chunk)
                    .ok_or_else(|| format!("unparseable variant in enum {name}"))?;
                if chunk.len() > at + 1 {
                    return Err(format!(
                        "serde shim derive supports only unit enum variants \
                         (enum {name}, variant {ident})"
                    ));
                }
                variants.push(ident);
            }
            Ok(Shape::Enum { name, variants })
        }
        other => Err(format!("expected struct or enum, found `{other}`")),
    }
}

/// Derives the shim's value-tree `Serialize` for named-field structs and
/// unit-variant enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "pairs.push(({f:?}.to_string(), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut pairs: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\n\
                         ::serde::Value::Obj(pairs)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity } => {
            // Newtypes serialize transparently; wider tuples as arrays.
            if arity == 1 {
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Serialize::to_value(&self.0)\n\
                         }}\n\
                     }}"
                )
            } else {
                let items: String = (0..arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Value::Arr(vec![{items}])\n\
                         }}\n\
                     }}"
                )
            }
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Str(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// Derives the shim's value-tree `Deserialize` for named-field structs and
/// unit-variant enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse_shape(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.field({f:?}))\
                         .map_err(|e| ::serde::DeError(\
                             format!(\"{name}.{f}: {{}}\", e.0)))?,"
                    )
                })
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity } => {
            if arity == 1 {
                format!(
                    "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                         fn from_value(v: &::serde::Value) \
                             -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                             Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                         }}\n\
                     }}"
                )
            } else {
                let items: String = (0..arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                    .collect();
                format!(
                    "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                         fn from_value(v: &::serde::Value) \
                             -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                             match v {{\n\
                                 ::serde::Value::Arr(items) if items.len() == {arity} => \
                                     Ok({name}({items})),\n\
                                 _ => Err(::serde::DeError(\
                                     \"expected {arity}-element array for {name}\"\
                                     .to_string())),\n\
                             }}\n\
                         }}\n\
                     }}"
                )
            }
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),"))
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {arms}\n\
                                 other => Err(::serde::DeError(format!(\
                                     \"unknown {name} variant {{other:?}}\"))),\n\
                             }},\n\
                             _ => Err(::serde::DeError(\
                                 \"expected string for enum {name}\".to_string())),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
