//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this shim provides the
//! small serde surface the workspace actually uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs and unit-variant enums, routed through a
//! self-describing [`Value`] tree that `serde_json` (the sibling shim)
//! renders to and parses from JSON.
//!
//! The traits intentionally differ from real serde's visitor architecture —
//! they are value-tree based, which is all the checkpointing and report
//! emission in this workspace needs. Swapping back to crates.io serde only
//! requires deleting the `crates/shims/` entries in the workspace manifest.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::HashMap;
use std::fmt;

/// A self-describing value tree: the interchange format between the derive
/// impls and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object with insertion-ordered keys (deterministic output).
    Obj(Vec<(String, Value)>),
}

const NULL: Value = Value::Null;

impl Value {
    /// Looks up a field of an object, yielding `Null` for absent keys so
    /// `Option` fields deserialize to `None`.
    pub fn field(&self, name: &str) -> &Value {
        match self {
            Value::Obj(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Error produced when a [`Value`] tree cannot be decoded into a type.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

fn type_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Num(_) => "number",
        Value::Str(_) => "string",
        Value::Arr(_) => "array",
        Value::Obj(_) => "object",
    }
}

fn expected(what: &str, got: &Value) -> DeError {
    DeError(format!("expected {what}, got {}", type_name(got)))
}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
///
/// The `'de` lifetime is phantom — the shim always copies out of the value
/// tree — but keeping it lets downstream code write real-serde bounds like
/// `T: for<'de> Deserialize<'de>` unchanged.
pub trait Deserialize<'de>: Sized {
    /// Decodes a value tree into `Self`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape does not match.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    other => Err(expected("number", other)),
                }
            }
        }
    )*};
}

impl_num!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>> Deserialize<'de> for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(expected("2-element array", other)),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<'de, A: Deserialize<'de>, B: Deserialize<'de>, C: Deserialize<'de>> Deserialize<'de>
    for (A, B, C)
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) if items.len() == 3 => Ok((
                A::from_value(&items[0])?,
                B::from_value(&items[1])?,
                C::from_value(&items[2])?,
            )),
            other => Err(expected("3-element array", other)),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(pairs)
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(expected("object", other)),
        }
    }
}
