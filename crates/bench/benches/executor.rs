//! TEE executor benchmarks: pricing the paper-scale models through the cost
//! model (Table 3 / Fig. 3 machinery) is itself cheap enough to sweep.
use criterion::{criterion_group, criterion_main, Criterion};
use tbnet_models::{resnet, vgg};
use tbnet_tee::{simulate_baseline, simulate_two_branch, CostModel, MemoryReport};

fn bench_executor(c: &mut Criterion) {
    let cost = CostModel::raspberry_pi3();
    let vgg18 = vgg::vgg18(10, 3, (32, 32));
    let resnet20 = resnet::resnet20(10, 3, (32, 32));
    let mut g = c.benchmark_group("executor");
    g.sample_size(20);

    g.bench_function("simulate_baseline vgg18 (full scale)", |b| {
        b.iter(|| simulate_baseline(&vgg18, &cost).unwrap())
    });
    g.bench_function("simulate_two_branch vgg18 (full scale)", |b| {
        b.iter(|| simulate_two_branch(&vgg18, &vgg18, &cost).unwrap())
    });
    g.bench_function("simulate_two_branch resnet20 (full scale)", |b| {
        b.iter(|| simulate_two_branch(&resnet20, &resnet20, &cost).unwrap())
    });
    g.bench_function("memory report vgg18", |b| {
        b.iter(|| MemoryReport::for_baseline(&vgg18).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
