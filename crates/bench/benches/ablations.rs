//! Ablation benchmarks for the design choices called out in DESIGN.md §5:
//! mask-construction cost under composite vs single-branch scoring, and
//! executor sensitivity to the world-switch cost (ablation 4).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use tbnet_core::pruning::{build_masks, composite_scores};
use tbnet_core::TwoBranchModel;
use tbnet_models::{vgg, ChainNet};
use tbnet_tee::{simulate_two_branch, CostModel};

fn bench_ablations(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let spec = vgg::vgg18(10, 3, (32, 32));
    let victim = ChainNet::from_spec(&spec, &mut rng).unwrap();
    let tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    // Ablation 1: composite (γ_R + γ_T) vs single-branch scoring cost.
    g.bench_function("composite scoring + masks (vgg18)", |b| {
        b.iter(|| {
            let scores = composite_scores(&tb).unwrap();
            build_masks(&tb, &scores, 0.1, 2).unwrap()
        })
    });
    g.bench_function("single-branch scoring + masks (vgg18)", |b| {
        b.iter(|| {
            let scores: Vec<Vec<f32>> = tb
                .mt()
                .units()
                .iter()
                .map(|u| {
                    u.bn()
                        .gamma()
                        .value
                        .as_slice()
                        .iter()
                        .map(|g| g.abs())
                        .collect()
                })
                .collect();
            build_masks(&tb, &scores, 0.1, 2).unwrap()
        })
    });

    // Ablation 4: world-switch cost sensitivity of the split execution.
    let tiny = vgg::vgg_tiny(10, 3, (16, 16));
    for switch_us in [10u64, 60, 200, 1000] {
        g.bench_with_input(
            BenchmarkId::new("two-branch latency sim, switch µs", switch_us),
            &switch_us,
            |b, &us| {
                let mut cost = CostModel::raspberry_pi3();
                cost.world_switch_s = us as f64 * 1e-6;
                b.iter(|| simulate_two_branch(&tiny, &tiny, &cost).unwrap())
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
