//! Inference-path benchmarks: victim forward, two-branch forward and the
//! functional split inference over the one-way channel.
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use tbnet_core::deploy::run_split_inference;
use tbnet_core::TwoBranchModel;
use tbnet_models::{resnet, vgg, ChainNet};
use tbnet_nn::{Layer, Mode};
use tbnet_tensor::init;

fn bench_inference(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let batch = init::randn(&[4, 3, 16, 16], 1.0, &mut rng);
    let mut g = c.benchmark_group("inference");
    g.sample_size(10);

    let vgg_spec = vgg::vgg_tiny(10, 3, (16, 16));
    let mut vgg_net = ChainNet::from_spec(&vgg_spec, &mut rng).unwrap();
    g.bench_function("vgg_tiny eval forward (batch 4)", |b| {
        b.iter(|| vgg_net.forward(&batch, Mode::Eval).unwrap())
    });

    let res_spec = resnet::resnet20_tiny(10, 3, (16, 16));
    let mut res_net = ChainNet::from_spec(&res_spec, &mut rng).unwrap();
    g.bench_function("resnet20_tiny eval forward (batch 4)", |b| {
        b.iter(|| res_net.forward(&batch, Mode::Eval).unwrap())
    });

    let victim = ChainNet::from_spec(&vgg_spec, &mut rng).unwrap();
    let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).unwrap();
    g.bench_function("two-branch predict (batch 4)", |b| {
        b.iter(|| tb.predict(&batch).unwrap())
    });

    g.bench_function("split inference over one-way channel (batch 4)", |b| {
        b.iter(|| run_split_inference(&mut tb, &batch).unwrap())
    });

    g.bench_function("two-branch train step (batch 4)", |b| {
        b.iter(|| {
            tb.zero_grad();
            let logits = tb.forward(&batch, Mode::Train).unwrap();
            let out = tbnet_nn::loss::softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
            tb.backward(&out.grad).unwrap();
        })
    });
    g.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
