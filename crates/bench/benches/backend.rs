//! Naive-vs-Parallel backend comparison on paper-scale kernel shapes.
//!
//! `cargo bench -p tbnet-bench --bench backend`. The machine-readable
//! version of this comparison is `cargo run --release -p tbnet-bench --bin
//! backend`, which writes `BENCH_backend.json`.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use tbnet_tensor::{init, BackendKind};

fn bench_backend(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let a = init::randn(&[256, 256], 1.0, &mut rng);
    let b = init::randn(&[256, 256], 1.0, &mut rng);
    let x = init::randn(&[8, 64, 32, 32], 1.0, &mut rng);
    let w = init::randn(&[64, 64, 3, 3], 0.1, &mut rng);
    let grad = init::randn(&[8, 64, 32, 32], 1.0, &mut rng);

    let mut g = c.benchmark_group("backend");
    g.sample_size(10);
    for kind in [BackendKind::Naive, BackendKind::Parallel] {
        let imp = kind.imp();
        g.bench_with_input(BenchmarkId::new("matmul 256^3", kind), &kind, |bench, _| {
            bench.iter(|| imp.matmul(&a, &b).unwrap())
        });
        g.bench_with_input(
            BenchmarkId::new("conv2d fwd 8x64x32x32", kind),
            &kind,
            |bench, _| bench.iter(|| imp.conv2d_forward(&x, &w, None, 1, 1).unwrap()),
        );
        g.bench_with_input(
            BenchmarkId::new("conv2d bwd 8x64x32x32", kind),
            &kind,
            |bench, _| bench.iter(|| imp.conv2d_backward(&x, &w, &grad, 1, 1, false).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(benches, bench_backend);
criterion_main!(benches);
