//! Kernel micro-benchmarks: the tensor operations that dominate training and
//! inference time.
use criterion::{criterion_group, criterion_main, Criterion};
use rand::SeedableRng;
use tbnet_tensor::{init, ops};

fn bench_ops(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let input = init::randn(&[8, 16, 16, 16], 1.0, &mut rng);
    let weight = init::randn(&[32, 16, 3, 3], 0.1, &mut rng);
    let mut g = c.benchmark_group("ops");
    g.sample_size(10);

    g.bench_function("conv2d_forward 8x16x16x16 -> 32ch", |b| {
        b.iter(|| ops::conv2d_forward(&input, &weight, None, 1, 1).unwrap())
    });

    let out = ops::conv2d_forward(&input, &weight, None, 1, 1).unwrap();
    let grad = init::randn(out.dims(), 1.0, &mut rng);
    g.bench_function("conv2d_backward 8x16x16x16 -> 32ch", |b| {
        b.iter(|| ops::conv2d_backward(&input, &weight, &grad, 1, 1, false).unwrap())
    });

    let a = init::randn(&[128, 128], 1.0, &mut rng);
    let bm = init::randn(&[128, 128], 1.0, &mut rng);
    g.bench_function("matmul 128x128", |b| {
        b.iter(|| ops::matmul(&a, &bm).unwrap())
    });

    g.bench_function("channel_mean_var 8x16x16x16", |b| {
        b.iter(|| ops::channel_mean_var(&input).unwrap())
    });

    g.bench_function("maxpool2d 8x16x16x16", |b| {
        b.iter(|| ops::maxpool2d_forward(&input, 2).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_ops);
criterion_main!(benches);
