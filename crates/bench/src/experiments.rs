//! Shared experiment definitions: model/dataset grid, scale presets and the
//! scenario runner every table/figure binary builds on.

use tbnet_core::attack::direct_use_attack;
use tbnet_core::pipeline::{run_pipeline, PipelineConfig, TbnetArtifacts};
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::ModelSpec;

/// Which paper model a scenario uses (width-scaled variants; see DESIGN.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// The paper's VGG18 (scaled: `vgg_tiny`).
    Vgg18,
    /// The paper's ResNet-20 (scaled: `resnet20_tiny`).
    ResNet20,
}

impl ModelKind {
    /// Display label matching the paper's rows.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Vgg18 => "VGG18",
            ModelKind::ResNet20 => "ResNet20",
        }
    }

    /// The experiment-scale spec for this model (width-scaled twins; see
    /// DESIGN.md §2 and the calibration notes in `EXPERIMENTS.md`).
    pub fn spec(self, classes: usize) -> ModelSpec {
        match self {
            ModelKind::Vgg18 => tbnet_models::vgg::vgg_tiny(classes, 3, (16, 16)),
            ModelKind::ResNet20 => tbnet_models::resnet::resnet20_tiny(classes, 3, (16, 16)),
        }
    }

    /// Victim learning rate: residual nets at this scale need the paper's
    /// 0.1 to converge; the small VGG prefers 0.05.
    pub fn victim_lr(self) -> f32 {
        match self {
            ModelKind::Vgg18 => 0.05,
            ModelKind::ResNet20 => 0.1,
        }
    }

    /// Epoch multiplier: ResNet converges more slowly on the synthetic data.
    pub fn epoch_factor(self) -> f32 {
        match self {
            ModelKind::Vgg18 => 1.0,
            ModelKind::ResNet20 => 1.5,
        }
    }
}

/// Experiment scale: how much training each scenario gets.
#[derive(Debug, Clone, PartialEq)]
pub struct Scale {
    /// Scale name (for report headers).
    pub name: &'static str,
    /// Victim training epochs.
    pub victim_epochs: usize,
    /// Knowledge-transfer epochs.
    pub transfer_epochs: usize,
    /// Fine-tune epochs per pruning iteration.
    pub finetune_epochs: usize,
    /// Maximum pruning iterations.
    pub prune_iterations: usize,
    /// Channels pruned per iteration.
    pub prune_ratio: f32,
    /// Accuracy-drop budget θ_drop.
    pub drop_budget: f32,
    /// Epochs the fine-tuning attacker trains for.
    pub attack_epochs: usize,
    /// Data fractions for the Fig. 2 sweep.
    pub fractions: Vec<f64>,
}

impl Scale {
    /// Fast smoke scale (seconds per scenario).
    pub fn quick() -> Self {
        Scale {
            name: "quick",
            victim_epochs: 4,
            transfer_epochs: 5,
            finetune_epochs: 1,
            prune_iterations: 2,
            prune_ratio: 0.15,
            drop_budget: 0.06,
            attack_epochs: 3,
            fractions: vec![0.01, 0.1, 0.5, 1.0],
        }
    }

    /// The experiment scale reported in `EXPERIMENTS.md` (minutes per
    /// scenario on one core).
    pub fn full() -> Self {
        Scale {
            name: "full",
            victim_epochs: 8,
            transfer_epochs: 10,
            finetune_epochs: 2,
            prune_iterations: 5,
            prune_ratio: 0.10,
            drop_budget: 0.04,
            attack_epochs: 6,
            fractions: vec![0.01, 0.02, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0],
        }
    }

    /// Reads `TBNET_SCALE` (`quick`/`full`), defaulting to `full`.
    pub fn from_env() -> Self {
        match std::env::var("TBNET_SCALE").as_deref() {
            Ok("quick") => Scale::quick(),
            _ => Scale::full(),
        }
    }

    /// Converts the scale into a pipeline configuration.
    pub fn pipeline_config(&self) -> PipelineConfig {
        let mut cfg = PipelineConfig::paper_scaled(
            self.victim_epochs,
            self.transfer_epochs,
            self.finetune_epochs,
        );
        cfg.prune.max_iterations = self.prune_iterations;
        cfg.prune.ratio = self.prune_ratio;
        cfg.prune.drop_budget = self.drop_budget;
        cfg
    }

    /// The attacker's training configuration.
    pub fn attack_config(&self) -> tbnet_core::train::TrainConfig {
        tbnet_core::train::TrainConfig::paper_scaled(self.attack_epochs)
    }
}

/// One (model, dataset) cell of the paper's evaluation grid, fully run.
pub struct Scenario {
    /// Which model.
    pub model: ModelKind,
    /// Which dataset.
    pub dataset: DatasetKind,
    /// The generated dataset.
    pub data: SyntheticCifar,
    /// Pipeline outputs (victim + finalized TBNet).
    pub artifacts: TbnetArtifacts,
    /// Direct-use attack accuracy (Table 1's "Attack Acc.").
    pub attack_acc: f32,
    /// Wall-clock seconds the scenario took.
    pub elapsed_s: f64,
}

/// Runs one grid cell end to end: dataset generation, the six-step pipeline
/// and the direct-use attack.
///
/// # Panics
///
/// Panics on internal pipeline errors — a benchmark binary has no meaningful
/// recovery, and the message names the failing stage.
pub fn run_scenario(model: ModelKind, dataset: DatasetKind, scale: &Scale) -> Scenario {
    let start = std::time::Instant::now();
    let data = SyntheticCifar::generate(dataset.config());
    let spec = model.spec(data.train().classes());
    let mut cfg = scale.pipeline_config();
    cfg.victim.lr = model.victim_lr();
    cfg.victim.epochs = ((cfg.victim.epochs as f32 * model.epoch_factor()).round() as usize).max(1);
    cfg.transfer.lr = model.victim_lr();
    cfg.transfer.epochs =
        ((cfg.transfer.epochs as f32 * model.epoch_factor()).round() as usize).max(1);
    let artifacts = run_pipeline(&spec, &data, &cfg).expect("pipeline failed (see stage in error)");
    let attack_acc =
        direct_use_attack(&artifacts.model, data.test()).expect("direct-use attack failed");
    Scenario {
        model,
        dataset,
        data,
        artifacts,
        attack_acc,
        elapsed_s: start.elapsed().as_secs_f64(),
    }
}

/// The full 2×2 grid of the paper's Table 1.
pub const GRID: [(DatasetKind, ModelKind); 4] = [
    (DatasetKind::Cifar10Like, ModelKind::Vgg18),
    (DatasetKind::Cifar10Like, ModelKind::ResNet20),
    (DatasetKind::Cifar100Like, ModelKind::Vgg18),
    (DatasetKind::Cifar100Like, ModelKind::ResNet20),
];

/// Formats a `[0, 1]` accuracy as a percentage string.
pub fn pct(x: f32) -> String {
    format!("{:.2}", x * 100.0)
}
