//! Regenerates Table 3 of the paper: inference latency baseline vs TBNet.
use tbnet_bench::experiments::{run_scenario, ModelKind, Scale};
use tbnet_bench::reports::report_table3;
use tbnet_data::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {}", scale.name);
    let scenarios = vec![
        run_scenario(ModelKind::Vgg18, DatasetKind::Cifar10Like, &scale),
        run_scenario(ModelKind::ResNet20, DatasetKind::Cifar10Like, &scale),
    ];
    println!("{}", report_table3(&scenarios));
}
