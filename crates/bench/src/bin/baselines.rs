//! Prior-art comparison (paper §2.3, implemented as an experiment):
//! full-TEE vs DarkneTZ-style layer partitioning vs TBNet, on the same
//! victim. For each defense: TEE memory, latency, and the strongest
//! applicable attack.
//!
//! ```sh
//! TBNET_SCALE=quick cargo run --release -p tbnet-bench --bin baselines
//! ```

use tbnet_bench::experiments::{pct, run_scenario, ModelKind, Scale};
use tbnet_bench::table::TextTable;
use tbnet_core::baselines::{substitute_model_attack, LayerPartition};
use tbnet_core::deploy::DeploymentPlan;
use tbnet_data::DatasetKind;
use tbnet_tee::{simulate_baseline, CostModel, MemoryReport};

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {}", scale.name);
    let cost = CostModel::raspberry_pi3();

    // One shared scenario provides the victim, the data and the TBNet
    // deployment.
    let s = run_scenario(ModelKind::Vgg18, DatasetKind::Cifar10Like, &scale);
    let victim_spec = s.artifacts.victim.spec();
    let n_units = victim_spec.units.len();

    let mut t = TextTable::new(&[
        "defense",
        "deployed acc %",
        "TEE mem (KiB)",
        "latency (ms)",
        "best attack",
        "attack acc %",
    ]);

    // --- Full-TEE baseline: secure but expensive; no model-stealing attack
    //     applies under the threat model (everything is inside the TEE). ---
    let mem = MemoryReport::for_baseline(&victim_spec).expect("memory");
    let lat = simulate_baseline(&victim_spec, &cost).expect("latency");
    t.row(&[
        "full TEE".into(),
        pct(s.artifacts.victim_acc),
        format!("{:.1}", mem.total() as f64 / 1024.0),
        format!("{:.3}", lat.total_s * 1e3),
        "none applicable".into(),
        "-".into(),
    ]);

    // --- DarkneTZ-style partition: protect the second half of the layers. ---
    let split = n_units / 2;
    let partition = LayerPartition::new(s.artifacts.victim.clone(), split).expect("partition");
    let p_mem = partition.memory().expect("memory");
    let p_lat = partition.latency(&cost).expect("latency");
    let sub = substitute_model_attack(
        &partition,
        s.data.train(),
        s.data.test(),
        1.0,
        &scale.attack_config(),
    )
    .expect("substitute attack");
    t.row(&[
        format!("layer partition (split {split}/{n_units})"),
        pct(s.artifacts.victim_acc),
        format!("{:.1}", p_mem.total() as f64 / 1024.0),
        format!("{:.3}", p_lat.total_s * 1e3),
        "substitute-model (§2.3)".into(),
        pct(sub.accuracy),
    ]);

    // --- TBNet. ---
    let plan = DeploymentPlan::new(&s.artifacts.model, victim_spec).expect("plan");
    let tb_mem = plan.memory().expect("memory");
    let tb_lat = plan.latency(&cost).expect("latency");
    t.row(&[
        "TBNet".into(),
        pct(s.artifacts.tbnet_acc),
        format!("{:.1}", tb_mem.tbnet.total() as f64 / 1024.0),
        format!("{:.3}", tb_lat.tbnet.total_s * 1e3),
        "direct use of M_R".into(),
        pct(s.attack_acc),
    ]);

    println!("Prior-art comparison — same victim, same attacker data budget (100%)");
    println!("{}", t.render());
    println!(
        "shape check: substitute attack on the partition defense should approach the \
         victim's accuracy, while TBNet's best attack stays far below it."
    );
}
