//! Regenerates Table 2 of the paper: M_T retrained alone vs TBNet.
use tbnet_bench::experiments::{run_scenario, ModelKind, Scale};
use tbnet_bench::reports::report_table2;
use tbnet_data::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {}", scale.name);
    let scenarios = vec![
        run_scenario(ModelKind::Vgg18, DatasetKind::Cifar10Like, &scale),
        run_scenario(ModelKind::ResNet20, DatasetKind::Cifar10Like, &scale),
    ];
    println!("{}", report_table2(&scenarios, &scale));
}
