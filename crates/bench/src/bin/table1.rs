//! Regenerates Table 1 of the paper: victim vs TBNet vs direct-use attack.
use tbnet_bench::experiments::{run_scenario, Scale, GRID};
use tbnet_bench::reports::{report_table1, scenario_summary};

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "scale: {} (set TBNET_SCALE=quick for a fast run)",
        scale.name
    );
    let scenarios: Vec<_> = GRID
        .iter()
        .map(|&(d, m)| {
            let s = run_scenario(m, d, &scale);
            eprintln!("  {}", scenario_summary(&s));
            s
        })
        .collect();
    println!("{}", report_table1(&scenarios));
}
