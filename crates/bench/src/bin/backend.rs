//! Backend comparison report: times the Naive and Parallel backends on
//! paper-scale kernel shapes and writes `BENCH_backend.json` at the repo
//! root (or the path given as the first argument).
//!
//! Besides min-of-N wall clock, every kernel row records **bytes allocated
//! per call** on each backend (via a counting global allocator local to
//! this binary), so memory-traffic wins show up even on a single-core host
//! where thread chunking cannot: the fused conv engine's steady-state calls
//! should allocate nothing beyond their returned tensors.
//!
//! Run with `cargo run --release -p tbnet-bench --bin backend`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::SeedableRng;
use serde::Serialize;
use tbnet_tensor::ops::PackedConv2dWeight;
use tbnet_tensor::{init, par, BackendKind, Tensor};

/// Wraps the system allocator with a monotonic allocated-bytes counter
/// (growth only — frees are not subtracted, so a delta around a call is
/// exactly the bytes that call requested).
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `System`; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocated_bytes() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}

#[derive(Debug, Clone, Serialize)]
struct KernelResult {
    kernel: String,
    shape: String,
    naive_ms: f64,
    parallel_ms: f64,
    speedup: f64,
    /// Heap bytes one warmed-up naive call allocates.
    naive_alloc_bytes: u64,
    /// Heap bytes one warmed-up parallel call allocates (the fused conv
    /// engine's steady-state calls allocate only their returned tensors).
    parallel_alloc_bytes: u64,
}

#[derive(Debug, Serialize)]
struct BackendReport {
    report: String,
    threads: usize,
    default_backend: String,
    samples_per_measurement: usize,
    note: String,
    results: Vec<KernelResult>,
}

/// Minimum wall-clock of `reps` runs — robust against scheduler noise.
fn time_min<F: FnMut() -> Tensor>(mut f: F, reps: usize) -> (f64, u64) {
    f(); // warmup (pools, arenas, packs)
    let a0 = allocated_bytes();
    f();
    let alloc_per_call = allocated_bytes() - a0;
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best * 1e3, alloc_per_call)
}

fn compare<F, G>(kernel: &str, shape: &str, reps: usize, naive: F, parallel: G) -> KernelResult
where
    F: FnMut() -> Tensor,
    G: FnMut() -> Tensor,
{
    let (naive_ms, naive_alloc_bytes) = time_min(naive, reps);
    let (parallel_ms, parallel_alloc_bytes) = time_min(parallel, reps);
    let r = KernelResult {
        kernel: kernel.to_string(),
        shape: shape.to_string(),
        naive_ms,
        parallel_ms,
        speedup: naive_ms / parallel_ms,
        naive_alloc_bytes,
        parallel_alloc_bytes,
    };
    println!(
        "{kernel:<16} {shape:<28} naive {naive_ms:8.2} ms | parallel {parallel_ms:8.2} ms | \
         {:.2}x | alloc {naive_alloc_bytes:>10} -> {parallel_alloc_bytes:>8} B",
        r.speedup
    );
    r
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_backend.json".to_string());
    let reps = 7;
    let naive = BackendKind::Naive.imp();
    let parallel = BackendKind::Parallel.imp();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut results = Vec::new();

    // The acceptance shape: a 256x256x256 GEMM.
    let a = init::randn(&[256, 256], 1.0, &mut rng);
    let b = init::randn(&[256, 256], 1.0, &mut rng);
    results.push(compare(
        "matmul",
        "256x256 @ 256x256",
        reps,
        || naive.matmul(&a, &b).unwrap(),
        || parallel.matmul(&a, &b).unwrap(),
    ));
    results.push(compare(
        "matmul_t_a",
        "256x256^T @ 256x256",
        reps,
        || naive.matmul_transpose_a(&a, &b).unwrap(),
        || parallel.matmul_transpose_a(&a, &b).unwrap(),
    ));
    results.push(compare(
        "matmul_t_b",
        "256x256 @ 256x256^T",
        reps,
        || naive.matmul_transpose_b(&a, &b).unwrap(),
        || parallel.matmul_transpose_b(&a, &b).unwrap(),
    ));

    // ResNet-scale convolution: mid-network layer geometry at CIFAR scale.
    // The Parallel side runs the layers' steady-state path — weights packed
    // once per weight-update epoch, panel-wise fused kernels.
    let x = init::randn(&[8, 64, 32, 32], 1.0, &mut rng);
    let w = init::randn(&[64, 64, 3, 3], 0.1, &mut rng);
    let packed = PackedConv2dWeight::new(&w).unwrap();
    results.push(compare(
        "conv2d_forward",
        "8x64x32x32 * 64x64x3x3",
        reps,
        || naive.conv2d_forward(&x, &w, None, 1, 1).unwrap(),
        || {
            parallel
                .conv2d_forward_packed(&x, &packed, None, 1, 1)
                .unwrap()
        },
    ));
    let grad = init::randn(&[8, 64, 32, 32], 1.0, &mut rng);
    results.push(compare(
        "conv2d_backward",
        "8x64x32x32 * 64x64x3x3",
        reps,
        || {
            naive
                .conv2d_backward(&x, &w, &grad, 1, 1, false)
                .unwrap()
                .grad_input
        },
        || {
            parallel
                .conv2d_backward_packed(&x, &packed, &grad, 1, 1, false)
                .unwrap()
                .grad_input
        },
    ));

    // The 1x1 dispatch path (pure strided matmul, no unfold).
    let w1 = init::randn(&[64, 64, 1, 1], 0.1, &mut rng);
    let packed1 = PackedConv2dWeight::new(&w1).unwrap();
    results.push(compare(
        "conv2d_fwd_1x1",
        "8x64x32x32 * 64x64x1x1",
        reps,
        || naive.conv2d_forward(&x, &w1, None, 1, 0).unwrap(),
        || {
            parallel
                .conv2d_forward_packed(&x, &packed1, None, 1, 0)
                .unwrap()
        },
    ));

    // Elementwise / reduction shapes from BatchNorm-heavy training.
    let big = init::randn(&[32, 64, 32, 32], 1.0, &mut rng);
    let big2 = init::randn(&[32, 64, 32, 32], 1.0, &mut rng);
    results.push(compare(
        "add",
        "32x64x32x32",
        reps,
        || naive.add(&big, &big2).unwrap(),
        || parallel.add(&big, &big2).unwrap(),
    ));
    results.push(compare(
        "channel_mean_var",
        "32x64x32x32",
        reps,
        || naive.channel_mean_var(&big).unwrap().0,
        || parallel.channel_mean_var(&big).unwrap().0,
    ));
    results.push(compare(
        "softmax_rows",
        "4096x256",
        reps,
        || naive.softmax_rows(&Tensor::ones(&[4096, 256])).unwrap(),
        || parallel.softmax_rows(&Tensor::ones(&[4096, 256])).unwrap(),
    ));

    let report = BackendReport {
        report: "backend-comparison".to_string(),
        threads: par::max_threads(),
        default_backend: tbnet_tensor::backend::global_kind().to_string(),
        samples_per_measurement: reps,
        note: "min-of-N wall clock per kernel plus bytes allocated by one \
               warmed-up call; Parallel gains come from register-blocked \
               kernels with runtime AVX2 dispatch, the fused zero-allocation \
               conv engine (packed weights, arena-panel im2col, 1x1/3x3 \
               direct paths) and persistent-pool chunking, so speedups scale \
               further with available cores (threads=1 shows the single-core \
               kernel improvement only)"
            .to_string(),
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_backend.json");
    println!("wrote {out_path}");
}
