//! Regenerates Fig. 2 of the paper: fine-tuning attack vs data availability.
use tbnet_bench::experiments::{run_scenario, ModelKind, Scale};
use tbnet_bench::reports::report_fig2;
use tbnet_data::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {}", scale.name);
    let scenarios = vec![
        run_scenario(ModelKind::Vgg18, DatasetKind::Cifar10Like, &scale),
        run_scenario(ModelKind::Vgg18, DatasetKind::Cifar100Like, &scale),
    ];
    println!("{}", report_fig2(&scenarios, &scale));
}
