//! Training-engine report: times the sequential reference loops against the
//! generic data-parallel engine at W ∈ {1, 2, 4} workers for all four
//! training phases — victim training, knowledge transfer, the pruning
//! fine-tune and the attacker's fine-tune — on a paper-shaped workload, and
//! writes `BENCH_train.json` at the repo root (or the path given as the
//! first argument). Besides throughput, the report records the maximum
//! per-epoch loss deviation from the sequential run — the determinism
//! contract the parity tests pin at 1e-5 — and the worker count
//! `WorkerPolicy::Auto` resolves to for each phase on this host.
//!
//! Run with `cargo run --release -p tbnet-bench --bin train`.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;

use tbnet_core::attack::{attack_seq, attack_with_workers};
use tbnet_core::dp_train::{clear_autotune_cache, train_victim_dp, DpTrainable, WorkerPolicy};
use tbnet_core::pruning::{build_masks, composite_scores, prune_two_branch_once};
use tbnet_core::train::{train_victim, EpochStats, TrainConfig};
use tbnet_core::transfer::{
    train_two_branch_seq, train_two_branch_with_workers, TransferConfig, TransferEpoch,
};
use tbnet_core::TwoBranchModel;
use tbnet_data::{DatasetKind, ImageDataset, SyntheticCifar};
use tbnet_models::{vgg, ChainNet};
use tbnet_nn::optim::Sgd;
use tbnet_tensor::par;

#[derive(Debug, Clone, Serialize)]
struct TrainResult {
    phase: String,
    engine: String,
    workers: usize,
    seconds: f64,
    samples_per_sec: f64,
    speedup_vs_sequential: f64,
    max_epoch_loss_delta: f32,
    final_loss: f32,
}

/// Worker count `WorkerPolicy::Auto` committed to for one phase.
#[derive(Debug, Clone, Serialize)]
struct AutoWorkers {
    phase: String,
    workers: usize,
}

#[derive(Debug, Serialize)]
struct TrainReport {
    report: String,
    threads: usize,
    pool_workers: usize,
    epochs: usize,
    batch_size: usize,
    train_samples: usize,
    note: String,
    auto_workers: Vec<AutoWorkers>,
    results: Vec<TrainResult>,
}

fn max_ce_delta(a: &[TransferEpoch], b: &[TransferEpoch]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x.ce_loss - y.ce_loss).abs())
        .fold(0.0f32, f32::max)
}

/// Resolves `WorkerPolicy::Auto` for one phase and records the commitment.
fn auto_choice<M: DpTrainable>(
    phase: &str,
    model: &M,
    data: &ImageDataset,
    batch_size: usize,
    lambda: f32,
) -> AutoWorkers {
    let sgd = Sgd::new(0.05, 0.9, 1e-4).expect("probe optimizer");
    let workers = WorkerPolicy::Auto
        .resolve(model, data, batch_size, &sgd, lambda)
        .expect("auto worker resolution");
    println!("{phase:9} WorkerPolicy::Auto → W={workers}");
    AutoWorkers {
        phase: phase.to_string(),
        workers,
    }
}

/// Times a sequential `ChainNet` training loop against the data-parallel
/// engine at W ∈ {1, 2, 4} from identical initial state, appending one row
/// per run (the victim and attack phases share this shape).
fn bench_chain_phase(
    phase: &str,
    net0: &ChainNet,
    data: &ImageDataset,
    cfg: &TrainConfig,
    seq: impl Fn(&mut ChainNet) -> Vec<EpochStats>,
    dp: impl Fn(&mut ChainNet, usize) -> Vec<EpochStats>,
    results: &mut Vec<TrainResult>,
) -> ChainNet {
    let samples = data.len() * cfg.epochs;
    let t0 = Instant::now();
    let mut seq_net = net0.clone();
    let seq_hist = seq(&mut seq_net);
    let seq_secs = t0.elapsed().as_secs_f64();
    println!(
        "{phase:9} sequential         {seq_secs:7.2} s | {:8.1} samples/s | final loss {:.4}",
        samples as f64 / seq_secs,
        seq_hist.last().unwrap().train_loss
    );
    results.push(TrainResult {
        phase: phase.to_string(),
        engine: "sequential".into(),
        workers: 1,
        seconds: seq_secs,
        samples_per_sec: samples as f64 / seq_secs,
        speedup_vs_sequential: 1.0,
        max_epoch_loss_delta: 0.0,
        final_loss: seq_hist.last().unwrap().train_loss,
    });

    for workers in [1usize, 2, 4] {
        let t0 = Instant::now();
        let mut dp_net = net0.clone();
        let hist = dp(&mut dp_net, workers);
        let secs = t0.elapsed().as_secs_f64();
        let delta = seq_hist
            .iter()
            .zip(&hist)
            .map(|(x, y)| (x.train_loss - y.train_loss).abs())
            .fold(0.0f32, f32::max);
        println!(
            "{phase:9} data-parallel W={workers} {secs:7.2} s | {:8.1} samples/s | {:.2}x | max loss Δ {delta:.2e}",
            samples as f64 / secs,
            seq_secs / secs
        );
        results.push(TrainResult {
            phase: phase.to_string(),
            engine: "data-parallel".into(),
            workers,
            seconds: secs,
            samples_per_sec: samples as f64 / secs,
            speedup_vs_sequential: seq_secs / secs,
            max_epoch_loss_delta: delta,
            final_loss: hist.last().unwrap().train_loss,
        });
    }
    seq_net
}

/// Times the sequential transfer loop and the data-parallel engine at
/// W ∈ {1, 2, 4} from identical initial state, appending one row per run.
fn bench_two_branch_phase(
    phase: &str,
    model0: &TwoBranchModel,
    data: &ImageDataset,
    cfg: &TransferConfig,
    results: &mut Vec<TrainResult>,
) -> TwoBranchModel {
    let samples = data.len() * cfg.epochs;
    let t0 = Instant::now();
    let mut seq_model = model0.clone();
    let seq_hist =
        train_two_branch_seq(&mut seq_model, data, cfg).expect("sequential two-branch training");
    let seq_secs = t0.elapsed().as_secs_f64();
    println!(
        "{phase:9} sequential         {seq_secs:7.2} s | {:8.1} samples/s | final ce {:.4}",
        samples as f64 / seq_secs,
        seq_hist.last().unwrap().ce_loss
    );
    results.push(TrainResult {
        phase: phase.to_string(),
        engine: "sequential".into(),
        workers: 1,
        seconds: seq_secs,
        samples_per_sec: samples as f64 / seq_secs,
        speedup_vs_sequential: 1.0,
        max_epoch_loss_delta: 0.0,
        final_loss: seq_hist.last().unwrap().ce_loss,
    });

    for workers in [1usize, 2, 4] {
        let t0 = Instant::now();
        let mut dp_model = model0.clone();
        let hist = train_two_branch_with_workers(&mut dp_model, data, cfg, workers)
            .expect("dp two-branch training");
        let secs = t0.elapsed().as_secs_f64();
        let delta = max_ce_delta(&seq_hist, &hist);
        println!(
            "{phase:9} data-parallel W={workers} {secs:7.2} s | {:8.1} samples/s | {:.2}x | max ce Δ {delta:.2e}",
            samples as f64 / secs,
            seq_secs / secs
        );
        results.push(TrainResult {
            phase: phase.to_string(),
            engine: "data-parallel".into(),
            workers,
            seconds: secs,
            samples_per_sec: samples as f64 / secs,
            speedup_vs_sequential: seq_secs / secs,
            max_epoch_loss_delta: delta,
            final_loss: hist.last().unwrap().ce_loss,
        });
    }
    seq_model
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_train.json".to_string());

    let data = SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_classes(4)
            .with_train_per_class(64)
            .with_test_per_class(8)
            .with_size(16, 16)
            .with_noise_std(0.3),
    );
    let spec = vgg::vgg_from_stages("bench-train", &[(16, 1), (32, 1)], 4, 3, (16, 16));
    let mut rng = StdRng::seed_from_u64(0);
    let net0 = ChainNet::from_spec(&spec, &mut rng).expect("bench spec is valid");
    let cfg = TrainConfig {
        epochs: 2,
        batch_size: 32,
        ..TrainConfig::paper_scaled(2)
    };
    let mut results = Vec::new();
    let mut auto = Vec::new();

    // Phase ⓪ — victim training.
    auto.push(auto_choice(
        "victim",
        &net0,
        data.train(),
        cfg.batch_size,
        0.0,
    ));
    let seq_net = bench_chain_phase(
        "victim",
        &net0,
        data.train(),
        &cfg,
        |net| train_victim(net, data.train(), &cfg).expect("sequential training"),
        |net, w| train_victim_dp(net, data.train(), &cfg, w).expect("dp training"),
        &mut results,
    );

    // Phase ② — knowledge transfer over the two-branch model (roughly 2×
    // the victim's work per sample: both branches train).
    let tb0 = TwoBranchModel::from_victim(&seq_net, &mut rng).expect("two-branch init");
    let tcfg = TransferConfig {
        epochs: 2,
        batch_size: 32,
        ..TransferConfig::paper_scaled(2)
    };
    auto.push(auto_choice(
        "transfer",
        &tb0,
        data.train(),
        tcfg.batch_size,
        tcfg.lambda,
    ));
    let transferred = bench_two_branch_phase("transfer", &tb0, data.train(), &tcfg, &mut results);

    // The attacker's fine-tune — a ChainNet training of the stolen M_R —
    // rides the same engine; timed here on the full training set.
    let stolen0 = transferred.extract_unsecured_branch();

    // Phases ③–⑤ — the pruning fine-tune: one composite-weight pruning
    // iteration, then the same engine on the narrowed model (mask-preserving
    // steps).
    let scores = composite_scores(&transferred).expect("composite scores");
    let masks = build_masks(&transferred, &scores, 0.25, 2).expect("masks");
    let mut pruned = transferred;
    prune_two_branch_once(&mut pruned, &masks).expect("prune");
    auto.push(auto_choice(
        "finetune",
        &pruned,
        data.train(),
        tcfg.batch_size,
        tcfg.lambda,
    ));
    bench_two_branch_phase("finetune", &pruned, data.train(), &tcfg, &mut results);

    // Attack phase (paper Fig. 2's attacker at 100% data availability).
    auto.push(auto_choice(
        "attack",
        &stolen0,
        data.train(),
        cfg.batch_size,
        0.0,
    ));
    bench_chain_phase(
        "attack",
        &stolen0,
        data.train(),
        &cfg,
        |net| attack_seq(net, data.train(), &cfg).expect("sequential attack fine-tune"),
        |net, w| attack_with_workers(net, data.train(), &cfg, w).expect("dp attack fine-tune"),
        &mut results,
    );

    // The phase probes above warmed the autotune cache; drop it so a rerun
    // of the binary in the same process (tests) re-measures.
    clear_autotune_cache();

    let report = TrainReport {
        report: "training-engine".to_string(),
        threads: par::max_threads(),
        pool_workers: par::pool_workers(),
        epochs: cfg.epochs,
        batch_size: cfg.batch_size,
        train_samples: data.train().len(),
        note: "wall clock per full training run, for all four phases \
               (victim / transfer / fine-tune on a pruned model / attacker \
               fine-tune of the stolen branch); every phase rides the \
               generic data-parallel engine, which shards each minibatch \
               across model replicas with synchronized BatchNorm \
               statistics, so max_epoch_loss_delta stays within f32 \
               rounding of the sequential loss curve. auto_workers records \
               what WorkerPolicy::Auto resolved to per phase on this host. \
               Speedups require multiple cores (threads=1 shows sync \
               overhead only)."
            .to_string(),
        auto_workers: auto,
        results,
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_train.json");
    println!("wrote {out_path}");
}
