//! Regenerates Fig. 4 of the paper: BN weight distributions after transfer.
use tbnet_bench::experiments::{ModelKind, Scale};
use tbnet_bench::reports::{report_fig4, run_transfer_only};
use tbnet_data::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {}", scale.name);
    let (model, _data) = run_transfer_only(ModelKind::Vgg18, DatasetKind::Cifar10Like, &scale);
    println!("{}", report_fig4(&model));
}
