//! Capacity-planning report: runs the deployment auto-optimizer under two
//! distinct SLOs, sweeps a fleet capacity curve, packs a tenant mix into
//! secure worlds, and validates the calibrated simulator's throughput
//! bracket against a short live `ServeEngine` run. Writes `BENCH_plan.json`
//! at the repo root (or the path given as the first argument).
//!
//! The `plan|*` regression rows are **analytic**: they price architectures
//! against the fixed Raspberry-Pi-3 cost profile, so their values are exact
//! across machines and the CI gate can hold them tightly. The live section
//! is measured on the host and asserted in-process (bracket + tolerance),
//! not ratio-gated.
//!
//! Run with `cargo run --release -p tbnet-bench --bin plan`.

use std::time::{Duration, Instant};

use serde::Serialize;
use tbnet_core::pipeline::{run_pipeline, PipelineConfig};
use tbnet_core::planner::{
    capacity_curve, optimize_deployment, plan_fleet, pruned_spec, validate_against_live,
    CandidatePlan, CapacityCurve, FleetSchedule, LiveValidation, SearchSpace, Slo, TenantDemand,
    TenantMix,
};
use tbnet_core::serve::{ServeConfig, ServeEngine};
use tbnet_core::TwoBranchModel;
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::vgg;
use tbnet_tee::{CostModel, FaultPlan};
use tbnet_tensor::{par, Tensor};

#[derive(Debug, Clone, Serialize)]
struct PlanRow {
    /// Section identifier (regression key: `plan|{plan}|{metric}`).
    plan: String,
    metric: String,
    value: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ChosenPlan {
    slo: String,
    max_latency_ms: f64,
    secure_memory_kib: usize,
    min_capacity_retention: f64,
    prune_iters: usize,
    rollback: usize,
    batch: usize,
    occupancy_per_request_us: f64,
    latency_ms: f64,
    secure_kib: f64,
    capacity_retention: f64,
    max_qps: f64,
}

#[derive(Debug, Clone, Serialize)]
struct CurvePoint {
    budget_mib: f64,
    qps: f64,
    batches: Vec<usize>,
}

#[derive(Debug, Serialize)]
struct PlanBenchReport {
    report: String,
    threads: usize,
    plans: Vec<ChosenPlan>,
    curve: Vec<CurvePoint>,
    knee_budget_mib: f64,
    knee_qps: f64,
    fleet_worlds: usize,
    fleet_world_utilizations: Vec<f64>,
    schedule_amortization: f64,
    live_measured_qps: f64,
    live_predicted_serial_qps: f64,
    live_predicted_pipelined_qps: f64,
    live_tolerance: f64,
    live_within_tolerance: bool,
    results: Vec<PlanRow>,
    note: String,
}

fn row(plan: &str, metric: &str, value: f64) -> PlanRow {
    PlanRow {
        plan: plan.to_string(),
        metric: metric.to_string(),
        value,
    }
}

fn chosen(slo: &Slo, plan: &CandidatePlan) -> ChosenPlan {
    ChosenPlan {
        slo: slo.name.clone(),
        max_latency_ms: slo.max_latency_s * 1e3,
        secure_memory_kib: slo.secure_memory_bytes >> 10,
        min_capacity_retention: slo.min_capacity_retention,
        prune_iters: plan.prune_iters,
        rollback: plan.rollback,
        batch: plan.batch,
        occupancy_per_request_us: plan.occupancy_per_request_s() * 1e6,
        latency_ms: plan.latency_s() * 1e3,
        secure_kib: plan.secure_bytes() as f64 / 1024.0,
        capacity_retention: plan.capacity_retention,
        max_qps: plan.max_qps(),
    }
}

/// A trained deployment for the live-validation section (same recipe as the
/// serve bench, sized so per-batch compute dominates scheduling overhead).
fn trained_deployment() -> (TwoBranchModel, Vec<Tensor>) {
    let data = SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_classes(3)
            .with_train_per_class(10)
            .with_test_per_class(8)
            .with_size(16, 16)
            .with_noise_std(0.25),
    );
    let spec = vgg::vgg_from_stages("plan-live", &[(16, 1), (16, 1)], 3, 3, (16, 16));
    let mut cfg = PipelineConfig::smoke();
    cfg.prune.drop_budget = 1.0;
    let artifacts = run_pipeline(&spec, &data, &cfg).expect("smoke pipeline trains");
    let images = (0..data.test().len())
        .map(|i| data.test().gather(&[i]).images)
        .collect();
    (artifacts.model, images)
}

/// Saturated live run: burst-submit everything, let the engine drain, and
/// validate the measured throughput against the calibrated bracket.
fn live_validation(tolerance: f64) -> LiveValidation {
    let (model, images) = trained_deployment();
    // Release-mode compute is µs-scale, so per-batch fixed costs the stage
    // timers cannot see (linger, condvar wakeups, handoffs) would dominate a
    // small-batch run: amortize them with a large max_batch and no linger
    // (burst submission fills batches without waiting).
    let cfg = ServeConfig {
        ree_workers: 1,
        max_batch: 16,
        batch_linger: Duration::ZERO,
        queue_high_water: 2048,
        default_deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(&model, cfg, FaultPlan::none()).expect("engine starts");
    let requests = 320usize;
    let started = Instant::now();
    for i in 0..requests {
        engine
            .submit(&images[i % images.len()])
            .expect("admission accepts while open");
    }
    let report = engine.shutdown();
    let elapsed = started.elapsed().as_secs_f64();
    let completed = (report.counts.answered + report.counts.degraded) as f64;
    assert!(completed as u64 == report.counts.admitted, "lost requests");
    let measured_qps = completed / elapsed.max(1e-9);
    validate_against_live(
        &report,
        &model.mt().spec(),
        &model.mr().spec(),
        measured_qps,
        tolerance,
    )
    .expect("live run calibrates")
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_plan.json".to_string());
    let cost = CostModel::raspberry_pi3();
    let victim = vgg::vgg_tiny(10, 3, (16, 16));
    let space = SearchSpace {
        ratio: 0.2,
        min_channels: 2,
        max_prune_iters: 4,
        batches: vec![1, 2, 4, 8, 16],
    };

    // ---- Deployment auto-optimizer under two distinct SLOs. ----
    let slos = [
        Slo::new("interactive", 0.012, 32 << 20, 0.55),
        Slo::new("constrained", 0.5, 1 << 20, 0.45),
    ];
    let mut plans = Vec::new();
    let mut results = Vec::new();
    let mut tuples = Vec::new();
    for slo in &slos {
        let plan = optimize_deployment(&victim, &space, slo, &cost).expect("SLO is satisfiable");
        assert!(plan.latency_s() <= slo.max_latency_s);
        assert!(plan.secure_bytes() <= slo.secure_memory_bytes);
        println!(
            "{:<12} -> prune {} rollback {} batch {:>2} | occ {:.1} us/req | \
             latency {:.2} ms | {:.0} KiB | retention {:.2} | {:.0} qps/world",
            slo.name,
            plan.prune_iters,
            plan.rollback,
            plan.batch,
            plan.occupancy_per_request_s() * 1e6,
            plan.latency_s() * 1e3,
            plan.secure_bytes() as f64 / 1024.0,
            plan.capacity_retention,
            plan.max_qps(),
        );
        results.push(row(
            &slo.name,
            "occupancy_us",
            plan.occupancy_per_request_s() * 1e6,
        ));
        results.push(row(&slo.name, "latency_ms", plan.latency_s() * 1e3));
        results.push(row(
            &slo.name,
            "secure_kib",
            plan.secure_bytes() as f64 / 1024.0,
        ));
        tuples.push((plan.prune_iters, plan.rollback, plan.batch));
        plans.push((slo.clone(), plan));
    }
    assert_ne!(
        tuples[0], tuples[1],
        "the two SLOs must choose different (pruning, rollback, batch) plans"
    );

    // ---- Fleet capacity curve: max sustained QPS per MiB of secure memory. ----
    let mix = vec![
        TenantMix {
            name: "heavy".into(),
            mt_spec: pruned_spec(&victim, 0.2, 2, 2).expect("spec prunes"),
            mr_spec: pruned_spec(&victim, 0.2, 2, 1).expect("spec prunes"),
            fraction: 3.0,
        },
        TenantMix {
            name: "medium".into(),
            mt_spec: pruned_spec(&victim, 0.2, 2, 3).expect("spec prunes"),
            mr_spec: pruned_spec(&victim, 0.2, 2, 2).expect("spec prunes"),
            fraction: 2.0,
        },
        TenantMix {
            name: "light".into(),
            mt_spec: pruned_spec(&victim, 0.2, 2, 4).expect("spec prunes"),
            mr_spec: pruned_spec(&victim, 0.2, 2, 2).expect("spec prunes"),
            fraction: 1.0,
        },
    ];
    let budgets: Vec<usize> = (1..=16).map(|i| i << 20).collect();
    let curve: CapacityCurve =
        capacity_curve(&mix, &cost, &budgets, &[1, 2, 4, 8, 16]).expect("curve sweeps");
    let knee = curve.knee().expect("some budget is feasible").clone();
    println!(
        "capacity curve: max {:.0} qps, knee at {} MiB ({:.0} qps)",
        curve.max_qps(),
        knee.budget_bytes >> 20,
        knee.qps
    );
    // knee_qps / max_qps / amortization are higher-is-better, so they are
    // floor-gated from the top-level summary fields, not ratio-gated rows.
    results.push(row("curve", "knee_mib", (knee.budget_bytes >> 20) as f64));

    // ---- Fleet packing + batched cross-tenant schedule. ----
    let tenants: Vec<TenantDemand> = vec![
        TenantDemand::from_plan("interactive-a", &plans[0].1, 40.0),
        TenantDemand::from_plan("interactive-b", &plans[0].1, 40.0),
        TenantDemand::from_plan("constrained-a", &plans[1].1, 25.0),
        TenantDemand::from_plan("constrained-b", &plans[1].1, 25.0),
        TenantDemand::from_plan("constrained-c", &plans[1].1, 25.0),
    ];
    let fleet = plan_fleet(&tenants, &cost, cost.secure_memory_budget).expect("fleet packs");
    let utilizations: Vec<f64> = fleet.worlds.iter().map(|w| w.compute_utilization).collect();
    println!(
        "fleet: {} tenants -> {} world(s), utilizations {:?}",
        tenants.len(),
        fleet.world_count(),
        utilizations
            .iter()
            .map(|u| (u * 1e3).round() / 1e3)
            .collect::<Vec<_>>()
    );
    let schedule =
        FleetSchedule::round_robin(&tenants, &[1000, 1000, 625, 625, 625]).expect("schedules");
    println!(
        "schedule: {} crossings, {:.2}x switch amortization over unbatched",
        schedule.slots.len(),
        schedule.amortization_factor()
    );
    results.push(row("fleet", "worlds", fleet.world_count() as f64));

    // ---- Live validation of the simulator's throughput bracket. ----
    let tolerance = 2.0;
    let live = live_validation(tolerance);
    println!(
        "live: measured {:.0} qps vs calibrated bracket [{:.0}, {:.0}] x tolerance {} -> {}",
        live.measured_qps,
        live.predicted_serial_qps,
        live.predicted_pipelined_qps,
        live.tolerance,
        if live.within_tolerance {
            "PASS"
        } else {
            "FAIL"
        }
    );
    assert!(
        live.within_tolerance,
        "measured {:.1} qps escaped the calibrated bracket [{:.1}, {:.1}] x {}",
        live.measured_qps, live.predicted_serial_qps, live.predicted_pipelined_qps, live.tolerance
    );

    let report = PlanBenchReport {
        report: "plan".to_string(),
        threads: par::max_threads(),
        plans: plans.iter().map(|(s, p)| chosen(s, p)).collect(),
        curve: curve
            .points
            .iter()
            .map(|p| CurvePoint {
                budget_mib: (p.budget_bytes >> 20) as f64,
                qps: p.qps,
                batches: p.batches.clone(),
            })
            .collect(),
        knee_budget_mib: (knee.budget_bytes >> 20) as f64,
        knee_qps: knee.qps,
        fleet_worlds: fleet.world_count(),
        fleet_world_utilizations: utilizations,
        schedule_amortization: schedule.amortization_factor(),
        live_measured_qps: live.measured_qps,
        live_predicted_serial_qps: live.predicted_serial_qps,
        live_predicted_pipelined_qps: live.predicted_pipelined_qps,
        live_tolerance: live.tolerance,
        live_within_tolerance: live.within_tolerance,
        results,
        note: "plan|* rows are analytic: the optimizer and the capacity curve \
               price (pruning x rollback x batch) candidates against the fixed \
               Raspberry-Pi-3 cost profile, so values are machine-exact and \
               tightly gated. Cost-like rows (occupancy, latency, footprint, \
               knee budget, world count) are ratio-gated; higher-is-better \
               summaries (knee_qps, schedule_amortization) are floor-gated \
               absolutely. The two SLOs must pick different plan tuples \
               (asserted). The live section drives a saturated ServeEngine run \
               on a trained smoke deployment, calibrates the simulator from \
               its measured stage times, and asserts the measured throughput \
               inside the [serial floor, pipelined ceiling] bracket widened by \
               the stated tolerance; it is asserted in-process, not ratio-gated"
            .to_string(),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_plan.json");
    println!("wrote {out_path}");
}
