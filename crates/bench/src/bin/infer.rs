//! Inference fast-path report: times the unfused (training-shaped) two-branch
//! forward against the BN-folded fused path and the int8 rich branch, and
//! writes `BENCH_infer.json` at the repo root (or the path given as the first
//! argument).
//!
//! Three claims are measured, not estimated:
//!
//! * the fused f32 path (BN folded into packed weights, ReLU/merge epilogues,
//!   index-free pooling) beats the unfused two-branch forward;
//! * the int8 `M_R` branch (u8×i8 integer GEMM over BN-folded weights) beats
//!   the fused f32 `M_R` branch;
//! * steady-state inference is allocation-flat beyond its output tensors
//!   (per-row alloc bytes via a counting global allocator, plus an
//!   arena-growth check across repeated calls);
//!
//! and, on a trained smoke-pipeline deployment, the int8 branch's top-1
//! agreement against the unfused f32 reference.
//!
//! Run with `cargo run --release -p tbnet-bench --bin infer`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use rand::SeedableRng;
use serde::Serialize;
use tbnet_core::deploy::run_split_inference;
use tbnet_core::pipeline::{run_pipeline, PipelineConfig};
use tbnet_core::TwoBranchModel;
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::{resnet, vgg, ChainNet, ModelSpec, QuantBranch};
use tbnet_nn::Mode;
use tbnet_tensor::{arena, init, par, Tensor};

/// Wraps the system allocator with a monotonic allocated-bytes counter
/// (growth only — frees are not subtracted, so a delta around a call is
/// exactly the bytes that call requested).
struct CountingAlloc;

static ALLOCATED: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation verbatim to `System`; the counter is a
// relaxed atomic with no other side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATED.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocated_bytes() -> u64 {
    ALLOCATED.load(Ordering::Relaxed)
}

#[derive(Debug, Clone, Serialize)]
struct PathResult {
    /// Execution path identifier (regression key: `infer|{path}|{shape}`).
    path: String,
    shape: String,
    ms: f64,
    /// Heap bytes one warmed-up call allocates (its output tensors and the
    /// bookkeeping of the path; scratch comes from the arenas).
    alloc_bytes: u64,
}

#[derive(Debug, Serialize)]
struct InferReport {
    report: String,
    threads: usize,
    samples_per_measurement: usize,
    results: Vec<PathResult>,
    /// Unfused-over-fused wall clock on the full two-branch forward of the
    /// bottleneck-residual model (the inference-serving geometry, where the
    /// training-shaped forward's separate BN/ReLU/merge sweeps dominate).
    fused_speedup: f64,
    /// f32-fused-over-int8 wall clock on the rich branch alone.
    int8_mr_speedup: f64,
    /// Fraction of the trained smoke deployment's eval set where the int8
    /// path picks the same class as the unfused f32 reference.
    int8_top1_agreement: f64,
    /// Largest absolute logit deviation of the int8 path on that eval set.
    int8_max_abs_err: f64,
    /// Whether repeated fused/int8 calls stopped growing the scratch arenas
    /// after warmup (steady-state inference allocates only outputs).
    arena_flat: bool,
    note: String,
}

/// Minimum wall-clock of `reps` runs — robust against scheduler noise.
fn time_min<F: FnMut() -> Tensor>(mut f: F, reps: usize) -> (f64, u64) {
    f(); // warmup (pools, arenas, packs)
    let a0 = allocated_bytes();
    f();
    let alloc_per_call = allocated_bytes() - a0;
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best * 1e3, alloc_per_call)
}

fn row<F: FnMut() -> Tensor>(path: &str, shape: &str, reps: usize, f: F) -> PathResult {
    let (ms, alloc_bytes) = time_min(f, reps);
    println!("{path:<24} {shape:<24} {ms:9.3} ms | alloc {alloc_bytes:>10} B");
    PathResult {
        path: path.to_string(),
        shape: shape.to_string(),
        ms,
        alloc_bytes,
    }
}

fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    let classes = logits.dim(1);
    logits
        .as_slice()
        .chunks(classes)
        .map(|r| {
            r.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// Top-1 agreement and max-abs-error of the int8 path against the unfused
/// f32 reference, on a *trained* deployment (separated logits — agreement on
/// an untrained network would measure tie-breaking noise, not quantization).
fn int8_agreement() -> (f64, f64) {
    let data = SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_classes(4)
            .with_train_per_class(24)
            .with_test_per_class(32)
            .with_size(12, 12)
            .with_noise_std(0.3),
    );
    let spec = vgg::vgg_from_stages("agree", &[(12, 1), (16, 1)], 4, 3, (12, 12));
    let mut cfg = PipelineConfig::smoke();
    cfg.prune.drop_budget = 1.0;
    let artifacts = run_pipeline(&spec, &data, &cfg).expect("smoke pipeline trains");
    let mut model = artifacts.model;
    let eval = data
        .test()
        .gather(&(0..data.test().len()).collect::<Vec<_>>());
    let reference = model.predict(&eval.images).expect("reference predict");
    let int8 = model.predict_int8(&eval.images).expect("int8 predict");
    let ra = argmax_rows(&reference);
    let qa = argmax_rows(&int8);
    let agree = ra.iter().zip(&qa).filter(|(a, b)| a == b).count();
    let max_err = int8
        .as_slice()
        .iter()
        .zip(reference.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    (agree as f64 / ra.len() as f64, f64::from(max_err))
}

fn mr_features(mr: &mut ChainNet, x: &Tensor) -> Tensor {
    let mut r = x.clone();
    for i in 0..mr.units().len() {
        r = mr.units_mut()[i]
            .forward_inference(&r, None, None)
            .expect("mr unit forward");
    }
    r
}

/// Builds a two-branch model from `spec` with warmed BN running statistics,
/// so the folded weights describe a realistic activation distribution.
fn warmed_model(spec: &ModelSpec, rng: &mut rand::rngs::StdRng) -> TwoBranchModel {
    let victim = ChainNet::from_spec(spec, rng).expect("victim builds");
    let mut model = TwoBranchModel::from_victim(&victim, rng).expect("two-branch builds");
    let (h, w) = spec.input_hw;
    for _ in 0..3 {
        let warm = init::randn(&[4, spec.in_channels, h, w], 1.0, rng);
        model
            .forward(&warm, Mode::Train)
            .expect("BN warmup forward");
    }
    model
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_infer.json".to_string());
    let reps = 7;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut results = Vec::new();

    // Two paper-family geometries at CIFAR scale. The VGG chain is 3×3
    // GEMM-bound — the geometry where int8 pays off — while the bottleneck
    // residual model spends most of its activations on 1×1 convolutions and
    // skip merges, the geometry where epilogue fusion pays off.
    let spec = vgg::vgg_from_stages("vgg-bench", &[(16, 2), (32, 2), (64, 2)], 10, 3, (32, 32));
    let mut model = warmed_model(&spec, &mut rng);
    let x = init::randn(&[8, 3, 32, 32], 1.0, &mut rng);
    let shape = "8x3x32x32 vgg-6u";

    // Full two-branch forward: training-shaped reference vs fused path.
    results.push(row("two_branch_unfused_f32", shape, reps, || {
        model.predict(&x).expect("unfused predict")
    }));
    results.push(row("two_branch_fused_f32", shape, reps, || {
        model.predict_fused(&x).expect("fused predict")
    }));

    // The rich branch alone: fused f32 vs int8 (the REE side of the split).
    let mut mr = model.extract_unsecured_branch();
    results.push(row("mr_fused_f32", shape, reps, || {
        mr_features(&mut mr, &x)
    }));
    let q = QuantBranch::from_chain(&mr).expect("mr quantizes");
    results.push(row("mr_int8", shape, reps, || {
        q.features(&x).expect("int8 features")
    }));
    let int8_mr_speedup = results[2].ms / results[3].ms;

    // Bottleneck-residual model: 1×1 reduce/expand convolutions and identity
    // skips leave the training-shaped forward dominated by the BN/ReLU/merge
    // sweeps that the fused path folds into conv epilogues.
    let bspec = resnet::bottleneck_from_stages("bneck-bench", &[32, 64], 2, 10, 3, (32, 32));
    let mut bmodel = warmed_model(&bspec, &mut rng);
    let bx = init::randn(&[8, 3, 32, 32], 1.0, &mut rng);
    let bshape = "8x3x32x32 bneck-13u";
    results.push(row("two_branch_unfused_f32", bshape, reps, || {
        bmodel.predict(&bx).expect("unfused predict")
    }));
    results.push(row("two_branch_fused_f32", bshape, reps, || {
        bmodel.predict_fused(&bx).expect("fused predict")
    }));
    let fused_speedup = results[4].ms / results[5].ms;

    // Steady state: after the timed warmups above, further fused and int8
    // calls must not grow the scratch arenas.
    let reserved = arena::reserved_elems();
    let a0 = allocated_bytes();
    std::hint::black_box(model.predict_fused(&x).expect("fused predict"));
    let fused_alloc = allocated_bytes() - a0;
    let a0 = allocated_bytes();
    std::hint::black_box(q.features(&x).expect("int8 features"));
    let int8_alloc = allocated_bytes() - a0;
    std::hint::black_box(bmodel.predict_fused(&bx).expect("fused predict"));
    let arena_flat = arena::reserved_elems() == reserved;
    println!(
        "steady-state: arena_flat={arena_flat} fused_alloc={fused_alloc}B int8_alloc={int8_alloc}B"
    );

    // Split execution with per-stage timings, for the simulator comparison.
    let split = run_split_inference(&mut model, &x).expect("split inference");
    let t = split.timings;
    println!(
        "split: total {:.3} ms (ree {:.3} | transfer {:.3} | tee {:.3} | merge {:.3})",
        t.total_ms, t.ree_ms, t.transfer_ms, t.tee_ms, t.merge_ms
    );

    let (int8_top1_agreement, int8_max_abs_err) = int8_agreement();
    println!(
        "int8 agreement: top-1 {:.4} | max |Δlogit| {:.5}",
        int8_top1_agreement, int8_max_abs_err
    );

    let report = InferReport {
        report: "infer".to_string(),
        threads: par::max_threads(),
        samples_per_measurement: reps,
        results,
        fused_speedup,
        int8_mr_speedup,
        int8_top1_agreement,
        int8_max_abs_err,
        arena_flat,
        note: "min-of-N wall clock per inference path plus bytes allocated by \
               one warmed-up call, over two paper-family geometries: a 3x3 \
               GEMM-bound VGG chain (where the int8 u8xi8 rich branch pays \
               off) and a bottleneck-residual model (1x1-conv and skip-merge \
               heavy, where epilogue fusion pays off). The fused rows fold \
               BatchNorm into the packed conv weights and run ReLU/skip/merge \
               as conv epilogues with index-free pooling; the int8 rows run \
               the rich branch as a u8xi8 integer GEMM with BN-derived static \
               activation ranges; agreement is measured on a trained smoke \
               deployment against the unfused f32 reference"
            .to_string(),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_infer.json");
    println!("fused {fused_speedup:.2}x | int8 M_R {int8_mr_speedup:.2}x | wrote {out_path}");
}
