//! Regenerates Fig. 3 of the paper: TEE memory usage baseline vs TBNet.
use tbnet_bench::experiments::{run_scenario, Scale, GRID};
use tbnet_bench::reports::report_fig3;

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {}", scale.name);
    let scenarios: Vec<_> = GRID
        .iter()
        .map(|&(d, m)| run_scenario(m, d, &scale))
        .collect();
    println!("{}", report_fig3(&scenarios));
}
