//! Model-zoo end-to-end report: runs the full TBNet protect pipeline
//! (victim training → two-branch transfer → iterative pruning → rollback
//! finalization → attack → deployment pricing) over one victim per conv
//! dispatch family and writes `BENCH_zoo.json` at the repo root (or the path
//! given as the first argument).
//!
//! The zoo covers every shape class the conv engine dispatches on:
//!
//! * `resnet` — 3×3 stencils with stride-2 stage entries and identity skips
//!   (direct 3×3 + strided 3×3 paths, residual `ChannelBook` alignment);
//! * `vgg` — plain 3×3/stride-1 chains (the direct 3×3 path);
//! * `vgg5x5` — 5×5/stride-1/pad-2 chains (the widened direct stencil);
//! * `mobile` — depthwise 3×3 + pointwise 1×1 pairs (the per-channel
//!   depthwise kernels and the 1×1 GEMM path).
//!
//! Per architecture the report records what the protection costs and buys:
//! accuracy delta (two-branch vs victim), direct-use attack accuracy on the
//! stolen rich branch, pruned parameter ratio, TEE secure-memory reduction,
//! and the fused-f32 / int8 latency crossover with top-1 agreement. Rows are
//! keyed `zoo|{arch}|{metric}` by the CI regression gate.
//!
//! Training runs with `WorkerPolicy::Fixed(1)` so every metric is a
//! deterministic function of the seed, not of the runner's core count.
//!
//! Run with `cargo run --release -p tbnet-bench --bin zoo`.

use std::time::Instant;

use serde::Serialize;
use tbnet_core::attack::direct_use_attack;
use tbnet_core::deploy::DeploymentPlan;
use tbnet_core::dp_train::WorkerPolicy;
use tbnet_core::pipeline::{run_pipeline, PipelineConfig};
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::{mobile, resnet, vgg, ModelSpec};
use tbnet_tensor::{arena, par, Tensor};

#[derive(Debug, Clone, Serialize)]
struct ZooRow {
    /// Architecture identifier (regression key: `zoo|{arch}|{metric}`).
    arch: String,
    metric: String,
    value: f64,
}

#[derive(Debug, Serialize)]
struct ZooReport {
    report: String,
    threads: usize,
    samples_per_measurement: usize,
    results: Vec<ZooRow>,
    /// Worst-case int8 top-1 agreement across the zoo (floor-gated in CI).
    int8_top1_agreement: f64,
    /// Worst-case unfused-over-fused speedup across the zoo (floor-gated).
    fused_speedup: f64,
    /// Whether repeated fused/int8 predictions stopped growing the scratch
    /// arenas after warmup, across every architecture.
    arena_flat: bool,
    note: String,
}

/// Minimum wall-clock of `reps` runs after one warmup.
fn time_min_ms<F: FnMut() -> Tensor>(mut f: F, reps: usize) -> f64 {
    f();
    let mut best = f64::MAX;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(f());
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best * 1e3
}

fn argmax_rows(logits: &Tensor) -> Vec<usize> {
    let classes = logits.dim(1);
    logits
        .as_slice()
        .chunks(classes)
        .map(|r| {
            r.iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect()
}

/// One victim per conv dispatch family, all at harness scale (8×8 inputs,
/// 3 classes) so the whole zoo trains in CI seconds.
fn zoo_specs(classes: usize) -> Vec<(&'static str, ModelSpec)> {
    vec![
        (
            "resnet",
            resnet::resnet_from_stages("resnet-zoo", &[8, 16], 1, classes, 3, (8, 8)),
        ),
        (
            "vgg",
            vgg::vgg_from_stages("vgg-zoo", &[(8, 1), (16, 1)], classes, 3, (8, 8)),
        ),
        (
            "vgg5x5",
            vgg::vgg5x5_from_stages("vgg5x5-zoo", &[(8, 1), (16, 1)], classes, 3, (8, 8)),
        ),
        (
            "mobile",
            mobile::mobile_from_stages("mobile-zoo", &[(8, 1), (16, 1)], classes, 3, (8, 8)),
        ),
    ]
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_zoo.json".to_string());
    let reps = 7;
    let classes = 3;
    let data = SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_classes(classes)
            .with_train_per_class(24)
            .with_test_per_class(24)
            .with_size(8, 8)
            .with_noise_std(0.3),
    );
    let mut cfg = PipelineConfig::smoke();
    // Always keep the pruned iterations (the zoo measures the protected
    // deployment, not the budget policy) and pin the trainer to one worker
    // so every metric is seed-deterministic across runners.
    cfg.prune.drop_budget = 1.0;
    cfg.workers = WorkerPolicy::Fixed(1);

    let mut results = Vec::new();
    let mut min_agreement = f64::MAX;
    let mut min_fused_speedup = f64::MAX;
    let mut arena_flat = true;

    for (arch, spec) in zoo_specs(classes) {
        let mut artifacts = run_pipeline(&spec, &data, &cfg)
            .unwrap_or_else(|e| panic!("{arch}: protect pipeline failed: {e}"));
        let params_before = artifacts.victim.param_count();
        let params_after = artifacts.model.mt_mut().param_count();
        let prune_ratio = 1.0 - params_after as f64 / params_before as f64;

        let attack_acc =
            direct_use_attack(&artifacts.model, data.test()).expect("direct-use attack");

        let plan = DeploymentPlan::new(&artifacts.model, spec.clone()).expect("deployment plan");
        let mem_reduction = plan.memory().expect("memory pricing").reduction_factor();

        // Latency crossover on the protected model, over the full eval set.
        let eval = data
            .test()
            .gather(&(0..data.test().len()).collect::<Vec<_>>());
        let model = &mut artifacts.model;
        let unfused_ms = time_min_ms(|| model.predict(&eval.images).expect("predict"), reps);
        let fused_ms = time_min_ms(
            || model.predict_fused(&eval.images).expect("fused predict"),
            reps,
        );
        let int8_ms = time_min_ms(
            || model.predict_int8(&eval.images).expect("int8 predict"),
            reps,
        );
        let fused_speedup = unfused_ms / fused_ms;

        // Steady state: the timed loops above warmed every path; further
        // calls must not grow the scratch arenas.
        let reserved = arena::reserved_elems();
        std::hint::black_box(model.predict_fused(&eval.images).expect("fused predict"));
        std::hint::black_box(model.predict_int8(&eval.images).expect("int8 predict"));
        arena_flat &= arena::reserved_elems() == reserved;

        let reference = model.predict(&eval.images).expect("reference predict");
        let int8 = model.predict_int8(&eval.images).expect("int8 predict");
        let ra = argmax_rows(&reference);
        let qa = argmax_rows(&int8);
        let agreement = ra.iter().zip(&qa).filter(|(a, b)| a == b).count() as f64 / ra.len() as f64;

        min_agreement = min_agreement.min(agreement);
        min_fused_speedup = min_fused_speedup.min(fused_speedup);

        let victim_acc = f64::from(artifacts.victim_acc);
        let tbnet_acc = f64::from(artifacts.tbnet_acc);
        println!(
            "{arch:<8} victim {victim_acc:.3} tbnet {tbnet_acc:.3} | attack {attack_acc:.3} | \
             pruned {prune_ratio:.3} | mem x{mem_reduction:.2} | fused x{fused_speedup:.2} | \
             int8 agree {agreement:.3}"
        );

        let mut push = |metric: &str, value: f64| {
            results.push(ZooRow {
                arch: arch.to_string(),
                metric: metric.to_string(),
                value,
            });
        };
        push("victim_acc", victim_acc);
        push("tbnet_acc", tbnet_acc);
        push("acc_delta", tbnet_acc - victim_acc);
        push("direct_use_attack_acc", f64::from(attack_acc));
        push("prune_param_ratio", prune_ratio);
        push("tee_mem_reduction", mem_reduction);
        push("unfused_ms", unfused_ms);
        push("fused_ms", fused_ms);
        push("int8_ms", int8_ms);
        push("fused_speedup", fused_speedup);
        push("int8_top1_agreement", agreement);
    }

    let report = ZooReport {
        report: "zoo".to_string(),
        threads: par::max_threads(),
        samples_per_measurement: reps,
        results,
        int8_top1_agreement: min_agreement,
        fused_speedup: min_fused_speedup,
        arena_flat,
        note: "full protect pipeline (victim train, two-branch transfer, \
               iterative pruning with rollback finalization, direct-use \
               attack, deployment pricing) over one victim per conv dispatch \
               family: resnet (3x3 + strided 3x3, residual skips), vgg \
               (3x3), vgg5x5 (direct 5x5), mobile (depthwise 3x3 + pointwise \
               1x1). Accuracy/attack/prune/memory rows are deterministic \
               functions of the seed (single-worker training); latency rows \
               are min-of-N wall clock on the protected model"
            .to_string(),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_zoo.json");
    println!(
        "zoo: min int8 agreement {min_agreement:.3} | min fused x{min_fused_speedup:.2} | \
         arena_flat={arena_flat} | wrote {out_path}"
    );
}
