//! Serving-runtime report: drives the fault-tolerant split-inference engine
//! with open-loop load under a healthy and a faulted scenario, and writes
//! `BENCH_serve.json` at the repo root (or the path given as the first
//! argument).
//!
//! Measured, not estimated:
//!
//! * throughput and p50/p99 request latency per scenario (the regression
//!   keys are `serve|{scenario}|{metric}`);
//! * shed/degraded/retry/requeue/restart counts under a seeded fault
//!   schedule (world-switch failures, payload corruption, consumer stalls
//!   and a mid-run consumer crash) — with the zero-lost-requests invariant
//!   checked on both scenarios;
//! * the healthy path's pipeline overlap, validated against the event-driven
//!   simulator by calibrating its cost model from the measured stage times.
//!
//! Run with `cargo run --release -p tbnet-bench --bin serve`.

use std::time::{Duration, Instant};

use serde::Serialize;
use tbnet_core::pipeline::{run_pipeline, PipelineConfig};
use tbnet_core::serve::{ServeConfig, ServeEngine, ServeReport};
use tbnet_core::TwoBranchModel;
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::vgg;
use tbnet_tee::FaultPlan;
use tbnet_tensor::{par, Tensor};

#[derive(Debug, Clone, Serialize)]
struct ScenarioRow {
    /// Scenario identifier (regression key: `serve|{scenario}|{metric}`).
    scenario: String,
    metric: String,
    value_ms: f64,
}

#[derive(Debug, Clone, Serialize)]
struct ScenarioSummary {
    scenario: String,
    admitted: u64,
    answered: u64,
    degraded: u64,
    shed: u64,
    expired: u64,
    shed_rate: f64,
    /// Completed answers (full + degraded) per second of scenario wall
    /// clock, submit of the first request to the end of the drain.
    throughput_rps: f64,
    p50_ms: f64,
    p99_ms: f64,
    send_retries: u64,
    requeues: u64,
    consumer_restarts: u64,
    corruption_detected: u64,
    faults_injected: u64,
    mean_batch: f64,
    measured_overlap: f64,
}

#[derive(Debug, Serialize)]
struct ServeBenchReport {
    report: String,
    threads: usize,
    requests_per_scenario: usize,
    results: Vec<ScenarioRow>,
    scenarios: Vec<ScenarioSummary>,
    /// Shed fraction of the healthy scenario (ceiling-gated in CI: a
    /// healthy engine at this load should shed almost nothing).
    healthy_shed_rate: f64,
    /// Shed fraction of the faulted scenario (ceiling-gated in CI).
    faulted_shed_rate: f64,
    /// Every admitted request reached exactly one terminal outcome.
    healthy_zero_lost: bool,
    faulted_zero_lost: bool,
    healthy_measured_overlap: f64,
    healthy_simulated_overlap: f64,
    /// measured/simulated stage overlap of the healthy path (1.0 = the
    /// concurrent runtime pipelines exactly as the calibrated simulator
    /// predicts).
    healthy_overlap_ratio: f64,
    note: String,
}

/// A trained smoke-pipeline deployment plus its eval images — serving an
/// untrained network would measure tie-breaking noise, not the runtime.
fn trained_deployment() -> (TwoBranchModel, Vec<Tensor>) {
    let data = SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_classes(3)
            .with_train_per_class(10)
            .with_test_per_class(8)
            .with_size(8, 8)
            .with_noise_std(0.25),
    );
    let spec = vgg::vgg_from_stages("serve-bench", &[(8, 1), (8, 1)], 3, 3, (8, 8));
    let mut cfg = PipelineConfig::smoke();
    cfg.prune.drop_budget = 1.0;
    let artifacts = run_pipeline(&spec, &data, &cfg).expect("smoke pipeline trains");
    let images = (0..data.test().len())
        .map(|i| data.test().gather(&[i]).images)
        .collect();
    (artifacts.model, images)
}

fn bench_config() -> ServeConfig {
    ServeConfig {
        ree_workers: 1,
        max_batch: 8,
        batch_linger: Duration::from_micros(500),
        queue_high_water: 64,
        default_deadline: Duration::from_secs(5),
        channel_cap: 4,
        send_timeout: Duration::from_millis(250),
        recv_timeout: Duration::from_millis(250),
        max_send_retries: 3,
        max_requeues: 3,
        backoff_base: Duration::from_micros(300),
        backoff_cap: Duration::from_millis(5),
        unhealthy_after: 5,
        healthy_after: 2,
        probe_interval: Duration::from_millis(5),
        drain_timeout: Duration::from_secs(60),
    }
}

/// Open-loop load: submissions arrive on a fixed schedule regardless of
/// completion (the serving regime where backpressure actually matters).
fn run_scenario(
    label: &str,
    model: &TwoBranchModel,
    images: &[Tensor],
    plan: FaultPlan,
    requests: usize,
    inter_arrival: Duration,
) -> (ServeReport, ScenarioSummary, Vec<ScenarioRow>) {
    let engine = ServeEngine::start(model, bench_config(), plan).expect("engine starts");
    let started = Instant::now();
    for i in 0..requests {
        engine
            .submit(&images[i % images.len()])
            .expect("admission accepts while open");
        std::thread::sleep(inter_arrival);
    }
    let report = engine.shutdown();
    let elapsed = started.elapsed().as_secs_f64();

    let completed = report.counts.answered + report.counts.degraded;
    let summary = ScenarioSummary {
        scenario: label.to_string(),
        admitted: report.counts.admitted,
        answered: report.counts.answered,
        degraded: report.counts.degraded,
        shed: report.counts.shed,
        expired: report.counts.expired,
        shed_rate: report.shed_rate(),
        throughput_rps: completed as f64 / elapsed.max(1e-9),
        p50_ms: report.latency_percentile(0.5),
        p99_ms: report.latency_percentile(0.99),
        send_retries: report.metrics.send_retries,
        requeues: report.metrics.requeues,
        consumer_restarts: report.metrics.consumer_restarts,
        corruption_detected: report.metrics.corruption_detected,
        faults_injected: report.faults.total_injected(),
        mean_batch: report.mean_batch,
        measured_overlap: report.measured_overlap,
    };
    let rows = vec![
        ScenarioRow {
            scenario: label.to_string(),
            metric: "p50".to_string(),
            value_ms: summary.p50_ms,
        },
        ScenarioRow {
            scenario: label.to_string(),
            metric: "p99".to_string(),
            value_ms: summary.p99_ms,
        },
    ];
    println!(
        "{label:<9} {:.1} req/s | p50 {:.3} ms p99 {:.3} ms | shed {:.1}% | \
         answered {} degraded {} expired {} | retries {} requeues {} restarts {} | \
         batch {:.2} overlap {:.3}",
        summary.throughput_rps,
        summary.p50_ms,
        summary.p99_ms,
        summary.shed_rate * 100.0,
        summary.answered,
        summary.degraded,
        summary.expired,
        summary.send_retries,
        summary.requeues,
        summary.consumer_restarts,
        summary.mean_batch,
        summary.measured_overlap,
    );
    (report, summary, rows)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let requests = 160usize;
    let inter_arrival = Duration::from_micros(250);

    let (model, images) = trained_deployment();

    let (healthy_report, healthy, mut results) = run_scenario(
        "healthy",
        &model,
        &images,
        FaultPlan::none(),
        requests,
        inter_arrival,
    );
    // A seeded schedule exercising every recovery path: transient
    // world-switch aborts, one scribbled payload, periodic consumer stalls
    // and a mid-run consumer crash.
    let plan = FaultPlan::seeded(42)
        .with_world_switch_failure_rate(0.08)
        .with_corrupt_payload_at(12)
        .with_consumer_stall_every(20, Duration::from_millis(2))
        .with_consumer_crash_at(30);
    let (faulted_report, faulted, faulted_rows) =
        run_scenario("faulted", &model, &images, plan, requests, inter_arrival);
    results.extend(faulted_rows);

    let healthy_zero_lost =
        healthy_report.completions.len() as u64 == healthy_report.counts.admitted;
    let faulted_zero_lost =
        faulted_report.completions.len() as u64 == faulted_report.counts.admitted;
    assert!(healthy_zero_lost && faulted_zero_lost, "lost requests");

    // Validate the healthy pipeline against the event-driven simulator:
    // calibrate its cost model from the measured stage means and compare
    // the achieved stage overlap with the simulated schedule's.
    let validation = healthy_report
        .validate_pipeline(&model.mt().spec(), &model.mr().spec())
        .expect("healthy run calibrates");
    println!(
        "overlap: measured {:.3} vs simulated {:.3} (ratio {:.3})",
        validation.measured_overlap, validation.simulated_overlap, validation.ratio
    );

    let report = ServeBenchReport {
        report: "serve".to_string(),
        threads: par::max_threads(),
        requests_per_scenario: requests,
        results,
        healthy_shed_rate: healthy.shed_rate,
        faulted_shed_rate: faulted.shed_rate,
        scenarios: vec![healthy, faulted],
        healthy_zero_lost,
        faulted_zero_lost,
        healthy_measured_overlap: validation.measured_overlap,
        healthy_simulated_overlap: validation.simulated_overlap,
        healthy_overlap_ratio: validation.ratio,
        note: "open-loop load (fixed inter-arrival) against the concurrent \
               split-inference serving runtime on a trained smoke deployment. \
               The healthy scenario runs fault-free and calibrates the \
               event-driven latency simulator from its measured stage times; \
               the faulted scenario replays a seeded nemesis schedule \
               (world-switch aborts with bounded-backoff retries, a corrupted \
               payload caught by checksum, periodic consumer stalls, and a \
               consumer crash recovered by supervisor restart) and must still \
               give every admitted request exactly one terminal outcome"
            .to_string(),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out_path, json + "\n").expect("write BENCH_serve.json");
    println!("wrote {out_path}");
}
