//! Runs the entire evaluation, sharing trained artifacts across reports:
//! Tables 1-3 and Figs. 2-4 in one pass.
use tbnet_bench::experiments::{run_scenario, ModelKind, Scale, GRID};
use tbnet_bench::reports::{
    report_fig2, report_fig3, report_fig4, report_table1, report_table2, report_table3,
    run_transfer_only, scenario_summary,
};
use tbnet_data::DatasetKind;

fn main() {
    let scale = Scale::from_env();
    eprintln!(
        "scale: {} (set TBNET_SCALE=quick for a fast run)",
        scale.name
    );
    let scenarios: Vec<_> = GRID
        .iter()
        .map(|&(d, m)| {
            let s = run_scenario(m, d, &scale);
            eprintln!("  {}", scenario_summary(&s));
            s
        })
        .collect();
    println!("{}", report_table1(&scenarios));
    println!("{}", report_table2(&scenarios, &scale));
    println!("{}", report_table3(&scenarios));
    println!("{}", report_fig2(&scenarios, &scale));
    println!("{}", report_fig3(&scenarios));
    let (transfer_model, _) = run_transfer_only(ModelKind::Vgg18, DatasetKind::Cifar10Like, &scale);
    println!("{}", report_fig4(&transfer_model));
}
