//! Quality ablations for the design choices called out in DESIGN.md §5:
//!
//! 1. composite BN scoring (`|γ_R| + |γ_T|`) vs. single-branch scoring;
//! 2. rollback depth (0 = no divergence, 1 = paper, 2 = wider `M_R`);
//! 3. sparsity weight λ sweep (prunability vs accuracy);
//! 4. world-switch-cost sensitivity of the split execution.
//!
//! ```sh
//! TBNET_SCALE=quick cargo run --release -p tbnet-bench --bin ablations
//! ```

use rand::SeedableRng;

use tbnet_bench::experiments::{pct, ModelKind, Scale};
use tbnet_bench::table::TextTable;
use tbnet_core::attack::direct_use_attack;
use tbnet_core::pruning::{build_masks, composite_scores, prune_two_branch_once, total_channels};
use tbnet_core::train::{train_victim, TrainConfig};
use tbnet_core::transfer::{evaluate_two_branch, train_two_branch, TransferConfig};
use tbnet_core::TwoBranchModel;
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::{vgg, ChainNet};
use tbnet_tee::{simulate_baseline, simulate_two_branch, CostModel};

fn fresh_model(scale: &Scale, data: &SyntheticCifar) -> TwoBranchModel {
    let spec = ModelKind::Vgg18.spec(data.train().classes());
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut victim = ChainNet::from_spec(&spec, &mut rng).expect("victim");
    train_victim(
        &mut victim,
        data.train(),
        &TrainConfig::paper_scaled(scale.victim_epochs),
    )
    .expect("victim training");
    let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).expect("two-branch");
    train_two_branch(
        &mut tb,
        data.train(),
        &TransferConfig::paper_scaled(scale.transfer_epochs),
    )
    .expect("transfer");
    tb
}

fn prune_once_with(
    tb: &mut TwoBranchModel,
    scores: Vec<Vec<f32>>,
    data: &SyntheticCifar,
    scale: &Scale,
) -> f32 {
    let masks = build_masks(tb, &scores, 0.2, 2).expect("masks");
    prune_two_branch_once(tb, &masks).expect("prune");
    train_two_branch(
        tb,
        data.train(),
        &TransferConfig::paper_scaled(scale.finetune_epochs.max(1)),
    )
    .expect("fine-tune");
    evaluate_two_branch(tb, data.test()).expect("eval")
}

fn ablation_scoring(scale: &Scale, data: &SyntheticCifar) {
    println!("\n== Ablation 1: pruning criterion (20% single shot) ==");
    let base = fresh_model(scale, data);
    let mut t = TextTable::new(&["criterion", "acc after prune+finetune %", "channels"]);

    let mut composite = base.clone();
    let s = composite_scores(&composite).expect("scores");
    let acc = prune_once_with(&mut composite, s, data, scale);
    t.row(&[
        "composite |γ_R|+|γ_T| (paper)".into(),
        pct(acc),
        total_channels(&composite).to_string(),
    ]);

    let mut single = base.clone();
    let s: Vec<Vec<f32>> = single
        .mt()
        .units()
        .iter()
        .map(|u| {
            u.bn()
                .gamma()
                .value
                .as_slice()
                .iter()
                .map(|g| g.abs())
                .collect()
        })
        .collect();
    let acc = prune_once_with(&mut single, s, data, scale);
    t.row(&[
        "single branch |γ_T| only".into(),
        pct(acc),
        total_channels(&single).to_string(),
    ]);
    println!("{}", t.render());
}

fn ablation_rollback(scale: &Scale, data: &SyntheticCifar) {
    println!("\n== Ablation 2: rollback depth ==");
    // Run two manual pruning iterations, keeping the M_R snapshots.
    let mut tb = fresh_model(scale, data);
    let snap0 = (tb.mr().clone(), tb.mr_book().clone());
    let s = composite_scores(&tb).expect("scores");
    prune_once_with(&mut tb, s, data, scale);
    let snap1 = (tb.mr().clone(), tb.mr_book().clone());
    let s = composite_scores(&tb).expect("scores");
    prune_once_with(&mut tb, s, data, scale);
    let snap2 = (tb.mr().clone(), tb.mr_book().clone());

    let mut t = TextTable::new(&[
        "rollback depth",
        "TBNet %",
        "attack %",
        "M_R channels",
        "M_T channels",
    ]);
    for (depth, (mr, book)) in [(0usize, snap2), (1, snap1), (2, snap0)] {
        let mut variant = tb.clone();
        variant
            .finalize_with_rollback(mr, book)
            .expect("finalization");
        let acc = evaluate_two_branch(&mut variant, data.test()).expect("eval");
        let attack = direct_use_attack(&variant, data.test()).expect("attack");
        let mr_ch: usize = variant.mr().units().iter().map(|u| u.out_channels()).sum();
        t.row(&[
            format!("{depth} (paper = 1)"),
            pct(acc),
            pct(attack),
            mr_ch.to_string(),
            total_channels(&variant).to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn ablation_lambda(scale: &Scale, data: &SyntheticCifar) {
    println!("\n== Ablation 3: sparsity weight λ ==");
    let spec = ModelKind::Vgg18.spec(data.train().classes());
    let mut t = TextTable::new(&["lambda", "train acc %", "frac |γ| < 0.1 (prunable mass)"]);
    for lambda in [0.0f32, 1e-5, 1e-4, 1e-3] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let mut victim = ChainNet::from_spec(&spec, &mut rng).expect("victim");
        train_victim(
            &mut victim,
            data.train(),
            &TrainConfig::paper_scaled(scale.victim_epochs),
        )
        .expect("victim training");
        let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).expect("two-branch");
        let history = train_two_branch(
            &mut tb,
            data.train(),
            &TransferConfig::paper_scaled(scale.transfer_epochs).with_lambda(lambda),
        )
        .expect("transfer");
        let report = tbnet_core::analysis::bn_weight_report(&tb, 10);
        let frac = (report.mr.frac_small + report.mt.frac_small) / 2.0;
        t.row(&[
            format!("{lambda:.0e}"),
            pct(history.last().expect("history").train_acc),
            format!("{frac:.3}"),
        ]);
    }
    println!("{}", t.render());
}

fn ablation_switch_cost() {
    println!("\n== Ablation 4: world-switch cost sensitivity ==");
    let spec = vgg::vgg_tiny(10, 3, (16, 16));
    let mut t = TextTable::new(&["switch cost (µs)", "baseline (ms)", "TBNet (ms)", "speedup"]);
    for us in [10.0f64, 60.0, 200.0, 1000.0, 5000.0] {
        let mut cost = CostModel::raspberry_pi3();
        cost.world_switch_s = us * 1e-6;
        let base = simulate_baseline(&spec, &cost).expect("baseline");
        let tb = simulate_two_branch(&spec, &spec, &cost).expect("two-branch");
        t.row(&[
            format!("{us:.0}"),
            format!("{:.3}", base.total_s * 1e3),
            format!("{:.3}", tb.total_s * 1e3),
            format!("{:.2}x", base.total_s / tb.total_s),
        ]);
    }
    println!("{}", t.render());
}

fn main() {
    let scale = Scale::from_env();
    eprintln!("scale: {}", scale.name);
    // Ablations use a reduced dataset: the comparisons are relative.
    let data = SyntheticCifar::generate(
        DatasetKind::Cifar10Like
            .config()
            .with_train_per_class(60)
            .with_test_per_class(20),
    );
    ablation_scoring(&scale, &data);
    ablation_rollback(&scale, &data);
    ablation_lambda(&scale, &data);
    ablation_switch_cost();
}
