//! Benchmark harness for the TBNet reproduction.
//!
//! This crate regenerates every table and figure of the paper's evaluation:
//!
//! | target | paper artefact |
//! |---|---|
//! | `cargo run -p tbnet-bench --bin table1 --release` | Table 1 (accuracy & direct-use attack) |
//! | `cargo run -p tbnet-bench --bin table2 --release` | Table 2 (`M_T`-only ablation) |
//! | `cargo run -p tbnet-bench --bin table3 --release` | Table 3 (inference latency) |
//! | `cargo run -p tbnet-bench --bin fig2 --release`   | Fig. 2 (fine-tuning attack) |
//! | `cargo run -p tbnet-bench --bin fig3 --release`   | Fig. 3 (TEE memory usage) |
//! | `cargo run -p tbnet-bench --bin fig4 --release`   | Fig. 4 (BN weight distribution) |
//! | `cargo run -p tbnet-bench --bin all --release`    | everything, sharing trained artifacts |
//!
//! The Criterion benches (`cargo bench`) cover kernels, inference paths, the
//! TEE executor and the DESIGN.md ablations.
//!
//! Set `TBNET_SCALE=quick` for a fast smoke run or `TBNET_SCALE=full`
//! (default) for the experiment scale used in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod reports;
pub mod table;
