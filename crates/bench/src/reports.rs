//! Report generators: one function per paper table/figure, reused by the
//! individual binaries and by `bin/all`.

use tbnet_core::analysis::bn_weight_report;
use tbnet_core::attack::{fine_tune_attack, retrain_secure_branch_alone};
use tbnet_core::deploy::DeploymentPlan;
use tbnet_core::pruning::total_channels;
use tbnet_core::transfer::train_two_branch;
use tbnet_core::TwoBranchModel;
use tbnet_data::{DatasetKind, SyntheticCifar};
use tbnet_models::ChainNet;
use tbnet_tee::CostModel;

use crate::experiments::{pct, ModelKind, Scale, Scenario};
use crate::table::TextTable;

/// Paper reference numbers for Table 1 (victim, TBNet, attack, gap in %).
pub const PAPER_TABLE1: [(DatasetKind, ModelKind, [f32; 4]); 4] = [
    (
        DatasetKind::Cifar10Like,
        ModelKind::Vgg18,
        [91.29, 90.72, 69.80, 20.92],
    ),
    (
        DatasetKind::Cifar10Like,
        ModelKind::ResNet20,
        [92.27, 91.68, 10.00, 81.68],
    ),
    (
        DatasetKind::Cifar100Like,
        ModelKind::Vgg18,
        [67.41, 68.37, 42.64, 25.73],
    ),
    (
        DatasetKind::Cifar100Like,
        ModelKind::ResNet20,
        [71.03, 69.49, 20.29, 48.54],
    ),
];

fn paper_table1_row(dataset: DatasetKind, model: ModelKind) -> Option<[f32; 4]> {
    PAPER_TABLE1
        .iter()
        .find(|(d, m, _)| *d == dataset && *m == model)
        .map(|(_, _, v)| *v)
}

/// Table 1 — accuracy of TBNet and protection against direct model usage.
pub fn report_table1(scenarios: &[Scenario]) -> String {
    let mut t = TextTable::new(&[
        "Dataset",
        "DNN",
        "Victim %",
        "TBNet %",
        "Attack %",
        "Gap %",
        "paper: victim/tbnet/attack/gap",
    ]);
    for s in scenarios {
        let gap = (s.artifacts.tbnet_acc - s.attack_acc) * 100.0;
        let paper = paper_table1_row(s.dataset, s.model)
            .map(|p| format!("{:.2}/{:.2}/{:.2}/{:.2}", p[0], p[1], p[2], p[3]))
            .unwrap_or_default();
        t.row(&[
            s.dataset.label().into(),
            s.model.label().into(),
            pct(s.artifacts.victim_acc),
            pct(s.artifacts.tbnet_acc),
            pct(s.attack_acc),
            format!("{gap:.2}"),
            paper,
        ]);
    }
    format!(
        "Table 1 — TBNet performance and protection against direct use\n{}",
        t.render()
    )
}

/// Table 2 — best-possible `M_T`-only (retrained on all data) vs TBNet.
pub fn report_table2(scenarios: &[Scenario], scale: &Scale) -> String {
    let mut t = TextTable::new(&[
        "DNN",
        "TBNet %",
        "M_T alone %",
        "Drop %",
        "paper: tbnet/mt/drop",
    ]);
    let paper = [
        (ModelKind::Vgg18, "91.29/87.57/3.72"),
        (ModelKind::ResNet20, "92.27/89.41/2.86"),
    ];
    for s in scenarios
        .iter()
        .filter(|s| s.dataset == DatasetKind::Cifar10Like)
    {
        let mt_alone = retrain_secure_branch_alone(
            &s.artifacts.model,
            s.data.train(),
            s.data.test(),
            &scale.attack_config(),
        )
        .expect("M_T-only retraining failed");
        let p = paper
            .iter()
            .find(|(m, _)| *m == s.model)
            .map(|(_, v)| v.to_string())
            .unwrap_or_default();
        t.row(&[
            s.model.label().into(),
            pct(s.artifacts.tbnet_acc),
            pct(mt_alone),
            format!("{:.2}", (s.artifacts.tbnet_acc - mt_alone) * 100.0),
            p,
        ]);
    }
    format!(
        "Table 2 — necessity of the unsecured branch (M_T retrained alone)\n{}",
        t.render()
    )
}

/// Table 3 — inference latency: whole victim in the TEE vs TBNet split.
pub fn report_table3(scenarios: &[Scenario]) -> String {
    let cost = CostModel::raspberry_pi3();
    let mut t = TextTable::new(&[
        "DNN",
        "Baseline (s)",
        "TBNet (s)",
        "Reduction",
        "paper: base/tbnet/red",
    ]);
    let paper = [
        (ModelKind::Vgg18, "2.3983/1.9589/1.22x"),
        (ModelKind::ResNet20, "3.7425/3.2667/1.15x"),
    ];
    for s in scenarios
        .iter()
        .filter(|s| s.dataset == DatasetKind::Cifar10Like)
    {
        let plan = DeploymentPlan::new(&s.artifacts.model, s.artifacts.victim.spec())
            .expect("deployment plan");
        let lat = plan.latency(&cost).expect("latency simulation");
        let p = paper
            .iter()
            .find(|(m, _)| *m == s.model)
            .map(|(_, v)| v.to_string())
            .unwrap_or_default();
        t.row(&[
            s.model.label().into(),
            format!("{:.6}", lat.baseline.total_s),
            format!("{:.6}", lat.tbnet.total_s),
            format!("{:.2}x", lat.reduction_factor()),
            p,
        ]);
    }
    format!(
        "Table 3 — inference latency (simulated Raspberry Pi 3 + OP-TEE cost model)\n{}",
        t.render()
    )
}

/// Fig. 2 — attacker fine-tunes the stolen `M_R` with varying data
/// availability (VGG18, both datasets).
pub fn report_fig2(scenarios: &[Scenario], scale: &Scale) -> String {
    let mut out = String::from("Fig. 2 — fine-tuning attack on M_R (VGG18)\n");
    for s in scenarios.iter().filter(|s| s.model == ModelKind::Vgg18) {
        let mut t = TextTable::new(&["Data fraction", "Samples", "Attacker %", "TBNet %"]);
        for &frac in &scale.fractions {
            let o = fine_tune_attack(
                &s.artifacts.model,
                s.data.train(),
                s.data.test(),
                frac,
                &scale.attack_config(),
            )
            .expect("fine-tune attack failed");
            t.row(&[
                format!("{:.0}%", frac * 100.0),
                o.samples_used.to_string(),
                pct(o.accuracy),
                pct(s.artifacts.tbnet_acc),
            ]);
        }
        out.push_str(&format!(
            "\n{} (paper at 100%: attacker 65.59 vs TBNet 68.37 on CIFAR100)\n{}",
            s.dataset.label(),
            t.render()
        ));
    }
    out
}

/// Fig. 3 — secure-memory usage: baseline vs TBNet for all four combos.
pub fn report_fig3(scenarios: &[Scenario]) -> String {
    let mut t = TextTable::new(&[
        "Dataset",
        "DNN",
        "Baseline (KiB)",
        "TBNet (KiB)",
        "Reduction",
        "paper red.",
    ]);
    let paper = [
        (DatasetKind::Cifar10Like, ModelKind::Vgg18, "2.45x"),
        (DatasetKind::Cifar10Like, ModelKind::ResNet20, "1.9x"),
        (DatasetKind::Cifar100Like, ModelKind::Vgg18, "1.68x"),
        (DatasetKind::Cifar100Like, ModelKind::ResNet20, "1.46x"),
    ];
    for s in scenarios {
        let plan = DeploymentPlan::new(&s.artifacts.model, s.artifacts.victim.spec())
            .expect("deployment plan");
        let mem = plan.memory().expect("memory report");
        let p = paper
            .iter()
            .find(|(d, m, _)| *d == s.dataset && *m == s.model)
            .map(|(_, _, v)| v.to_string())
            .unwrap_or_default();
        t.row(&[
            s.dataset.label().into(),
            s.model.label().into(),
            format!("{:.1}", mem.baseline.total() as f64 / 1024.0),
            format!("{:.1}", mem.tbnet.total() as f64 / 1024.0),
            format!("{:.2}x", mem.reduction_factor()),
            p,
        ]);
    }
    format!("Fig. 3 — TEE memory usage comparison\n{}", t.render())
}

/// Builds a two-branch model and runs *only* knowledge transfer — the state
/// Fig. 4 inspects.
pub fn run_transfer_only(
    model: ModelKind,
    dataset: DatasetKind,
    scale: &Scale,
) -> (TwoBranchModel, SyntheticCifar) {
    use rand::SeedableRng;
    let data = SyntheticCifar::generate(dataset.config());
    let spec = model.spec(data.train().classes());
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let mut victim = ChainNet::from_spec(&spec, &mut rng).expect("victim construction");
    tbnet_core::train::train_victim(
        &mut victim,
        data.train(),
        &tbnet_core::train::TrainConfig::paper_scaled(scale.victim_epochs),
    )
    .expect("victim training");
    let mut tb = TwoBranchModel::from_victim(&victim, &mut rng).expect("two-branch init");
    train_two_branch(
        &mut tb,
        data.train(),
        &tbnet_core::transfer::TransferConfig::paper_scaled(scale.transfer_epochs),
    )
    .expect("knowledge transfer");
    (tb, data)
}

/// Fig. 4 — distribution of BN scales in `M_R` and `M_T` after knowledge
/// transfer.
pub fn report_fig4(model: &TwoBranchModel) -> String {
    let report = bn_weight_report(model, 10);
    let mut out = String::from("Fig. 4 — BN weight (γ) distribution after knowledge transfer\n");
    out.push_str(&format!(
        "M_R: n={} mean={:.4} median={:.4} frac|γ|<0.1={:.2}\n",
        report.mr.count, report.mr.mean, report.mr.median, report.mr.frac_small
    ));
    out.push_str(&format!(
        "M_T: n={} mean={:.4} median={:.4} frac|γ|<0.1={:.2}\n",
        report.mt.count, report.mt.mean, report.mt.median, report.mt.frac_small
    ));
    out.push_str(&format!(
        "paper shape: mean γ of M_R < mean γ of M_T — {}\n",
        if report.mr.mean < report.mt.mean {
            "REPRODUCED"
        } else {
            "NOT reproduced at this scale"
        }
    ));
    let render_hist = |name: &str, h: &tbnet_core::analysis::Histogram| {
        let mut s = format!("{name} histogram [{:.3}, {:.3}):\n", h.lo, h.hi);
        let max = h.counts.iter().copied().max().unwrap_or(1).max(1);
        for (i, &c) in h.counts.iter().enumerate() {
            let bar = "#".repeat((c as usize * 40) / max as usize);
            s.push_str(&format!("  {:>7.3} | {:<40} {}\n", h.bin_center(i), bar, c));
        }
        s
    };
    out.push_str(&render_hist("M_R", &report.mr_hist));
    out.push_str(&render_hist("M_T", &report.mt_hist));
    out
}

/// One-line summary of a scenario's pruning outcome (handy in all reports).
pub fn scenario_summary(s: &Scenario) -> String {
    format!(
        "{}/{}: victim {}%, TBNet {}%, attack {}%, M_T channels {}, {} prune iters, {:.0}s",
        s.dataset.label(),
        s.model.label(),
        pct(s.artifacts.victim_acc),
        pct(s.artifacts.tbnet_acc),
        pct(s.attack_acc),
        total_channels(&s.artifacts.model),
        s.artifacts.prune_history.len(),
        s.elapsed_s
    )
}
