//! Minimal fixed-width table printer for the experiment binaries.

/// A simple left-aligned text table.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: &[String]) {
        let mut r: Vec<String> = cells.to_vec();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::from("|");
            for (i, c) in cells.iter().enumerate().take(cols) {
                s.push_str(&format!(" {:<w$} |", c, w = widths[i]));
            }
            s
        };
        let mut out = String::new();
        out.push_str(&line(&self.header));
        out.push('\n');
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(&["a", "longer"]);
        t.row(&["xxxx".into(), "y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[0].contains("longer"));
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(&["a", "b", "c"]);
        t.row(&["1".into()]);
        assert!(t.render().lines().count() == 3);
    }
}
