//! Epoch planning helpers.

use serde::{Deserialize, Serialize};

/// A derived description of how a dataset splits into minibatches — used by
/// the training loops for progress accounting and by tests to validate
/// coverage without materializing batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchPlan {
    /// Number of samples in the dataset.
    pub samples: usize,
    /// Configured batch size.
    pub batch_size: usize,
}

impl BatchPlan {
    /// Creates a plan; a zero batch size is promoted to 1.
    pub fn new(samples: usize, batch_size: usize) -> Self {
        BatchPlan {
            samples,
            batch_size: batch_size.max(1),
        }
    }

    /// Number of batches per epoch (ceiling division).
    pub fn batches_per_epoch(&self) -> usize {
        self.samples.div_ceil(self.batch_size)
    }

    /// Size of the final (possibly ragged) batch.
    pub fn last_batch_size(&self) -> usize {
        if self.samples == 0 {
            0
        } else {
            let rem = self.samples % self.batch_size;
            if rem == 0 {
                self.batch_size
            } else {
                rem
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_division() {
        let p = BatchPlan::new(100, 25);
        assert_eq!(p.batches_per_epoch(), 4);
        assert_eq!(p.last_batch_size(), 25);
    }

    #[test]
    fn ragged_final_batch() {
        let p = BatchPlan::new(103, 25);
        assert_eq!(p.batches_per_epoch(), 5);
        assert_eq!(p.last_batch_size(), 3);
    }

    #[test]
    fn zero_batch_size_promoted() {
        let p = BatchPlan::new(10, 0);
        assert_eq!(p.batch_size, 1);
        assert_eq!(p.batches_per_epoch(), 10);
    }

    #[test]
    fn empty_dataset() {
        let p = BatchPlan::new(0, 32);
        assert_eq!(p.batches_per_epoch(), 0);
        assert_eq!(p.last_batch_size(), 0);
    }
}
