use rand::seq::SliceRandom;
use rand::Rng;

use tbnet_tensor::{Tensor, TensorError};

/// A minibatch: images `[B, C, H, W]` plus integer labels.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Image tensor `[B, C, H, W]`.
    pub images: Tensor,
    /// One label per image.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

/// An in-memory labelled image dataset with `[N, C, H, W]` storage.
///
/// Provides the three access patterns the experiments need: full-tensor
/// evaluation, shuffled minibatch iteration, and stratified fractional
/// subsets (the attacker's "x% of the training data" in Fig. 2 of the paper).
#[derive(Debug, Clone)]
pub struct ImageDataset {
    images: Tensor,
    labels: Vec<usize>,
    classes: usize,
}

impl ImageDataset {
    /// Wraps image storage and labels into a dataset.
    ///
    /// # Errors
    ///
    /// Returns a tensor error when `images` is not 4-D, the label count does
    /// not match the batch dimension, or a label is `>= classes`.
    pub fn new(images: Tensor, labels: Vec<usize>, classes: usize) -> Result<Self, TensorError> {
        if images.rank() != 4 {
            return Err(TensorError::RankMismatch {
                expected: 4,
                got: images.rank(),
                op: "ImageDataset::new",
            });
        }
        if images.dim(0) != labels.len() {
            return Err(TensorError::LengthMismatch {
                expected: images.dim(0),
                got: labels.len(),
                op: "ImageDataset::new",
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= classes) {
            return Err(TensorError::InvalidGeometry {
                reason: format!("label {bad} out of range for {classes} classes"),
            });
        }
        Ok(ImageDataset {
            images,
            labels,
            classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` when the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Image channel count.
    pub fn channels(&self) -> usize {
        self.images.dim(1)
    }

    /// Image height.
    pub fn height(&self) -> usize {
        self.images.dim(2)
    }

    /// Image width.
    pub fn width(&self) -> usize {
        self.images.dim(3)
    }

    /// The full image tensor `[N, C, H, W]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Copies the samples at `indices` into a [`Batch`].
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range (indices are produced internally).
    pub fn gather(&self, indices: &[usize]) -> Batch {
        let (c, h, w) = (self.channels(), self.height(), self.width());
        let sample = c * h * w;
        let mut data = Vec::with_capacity(indices.len() * sample);
        let src = self.images.as_slice();
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(&src[i * sample..(i + 1) * sample]);
            labels.push(self.labels[i]);
        }
        let images = Tensor::from_vec(data, &[indices.len(), c, h, w])
            .expect("gather: internally consistent shape");
        Batch { images, labels }
    }

    /// Shuffled minibatches covering the dataset once (the final batch may be
    /// smaller).
    pub fn minibatches<R: Rng + ?Sized>(&self, batch_size: usize, rng: &mut R) -> Vec<Batch> {
        let batch_size = batch_size.max(1);
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        order
            .chunks(batch_size)
            .map(|chunk| self.gather(chunk))
            .collect()
    }

    /// Shuffled minibatches with a training-time augmentation policy applied
    /// to every batch (see [`crate::Augment`]).
    pub fn minibatches_augmented<R: Rng + ?Sized>(
        &self,
        batch_size: usize,
        augment: &crate::Augment,
        rng: &mut R,
    ) -> Vec<Batch> {
        let mut batches = self.minibatches(batch_size, rng);
        for b in &mut batches {
            augment.apply(b, rng);
        }
        batches
    }

    /// The whole dataset as one batch (for evaluation).
    pub fn as_batch(&self) -> Batch {
        Batch {
            images: self.images.clone(),
            labels: self.labels.clone(),
        }
    }

    /// A stratified random subset containing `fraction` of each class
    /// (rounded up so tiny fractions keep at least one sample per class).
    ///
    /// This models the attacker's partial training data in the fine-tuning
    /// experiment (paper Fig. 2).
    pub fn stratified_fraction<R: Rng + ?Sized>(&self, fraction: f64, rng: &mut R) -> ImageDataset {
        let fraction = fraction.clamp(0.0, 1.0);
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); self.classes];
        for (i, &l) in self.labels.iter().enumerate() {
            per_class[l].push(i);
        }
        let mut keep = Vec::new();
        for idxs in per_class.iter_mut() {
            if idxs.is_empty() {
                continue;
            }
            idxs.shuffle(rng);
            let take = if fraction == 0.0 {
                0
            } else {
                ((idxs.len() as f64 * fraction).ceil() as usize).max(1)
            };
            keep.extend_from_slice(&idxs[..take.min(idxs.len())]);
        }
        keep.sort_unstable();
        let batch = self.gather(&keep);
        ImageDataset {
            images: batch.images,
            labels: batch.labels,
            classes: self.classes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy(n_per_class: usize, classes: usize) -> ImageDataset {
        let n = n_per_class * classes;
        let mut data = vec![0.0f32; n * 3 * 2 * 2];
        let mut labels = Vec::new();
        for i in 0..n {
            let label = i % classes;
            labels.push(label);
            data[i * 12] = label as f32; // encode the label in pixel 0
        }
        ImageDataset::new(
            Tensor::from_vec(data, &[n, 3, 2, 2]).unwrap(),
            labels,
            classes,
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let imgs = Tensor::zeros(&[4, 3, 2, 2]);
        assert!(ImageDataset::new(imgs.clone(), vec![0, 1, 2], 3).is_err());
        assert!(ImageDataset::new(imgs.clone(), vec![0, 1, 2, 5], 3).is_err());
        assert!(ImageDataset::new(Tensor::zeros(&[4, 12]), vec![0; 4], 3).is_err());
        assert!(ImageDataset::new(imgs, vec![0, 1, 2, 2], 3).is_ok());
    }

    #[test]
    fn accessors() {
        let ds = toy(5, 4);
        assert_eq!(ds.len(), 20);
        assert_eq!(ds.classes(), 4);
        assert_eq!(ds.channels(), 3);
        assert_eq!(ds.height(), 2);
        assert_eq!(ds.width(), 2);
        assert!(!ds.is_empty());
    }

    #[test]
    fn gather_preserves_pairing() {
        let ds = toy(3, 3);
        let batch = ds.gather(&[2, 5, 8]);
        assert_eq!(batch.len(), 3);
        for (i, &l) in batch.labels.iter().enumerate() {
            // Pixel 0 encodes the label.
            assert_eq!(batch.images.as_slice()[i * 12] as usize, l);
        }
    }

    #[test]
    fn minibatches_cover_everything_once() {
        let ds = toy(4, 5);
        let mut rng = StdRng::seed_from_u64(0);
        let batches = ds.minibatches(7, &mut rng);
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 20);
        assert_eq!(batches.len(), 3); // 7 + 7 + 6
                                      // Labels stay consistent with pixel encoding after shuffling.
        for b in &batches {
            for (i, &l) in b.labels.iter().enumerate() {
                assert_eq!(b.images.as_slice()[i * 12] as usize, l);
            }
        }
    }

    #[test]
    fn stratified_fraction_is_balanced() {
        let ds = toy(10, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let half = ds.stratified_fraction(0.5, &mut rng);
        assert_eq!(half.len(), 20);
        for c in 0..4 {
            let count = half.labels().iter().filter(|&&l| l == c).count();
            assert_eq!(count, 5, "class {c}");
        }
    }

    #[test]
    fn tiny_fraction_keeps_one_per_class() {
        let ds = toy(100, 3);
        let mut rng = StdRng::seed_from_u64(2);
        let tiny = ds.stratified_fraction(0.001, &mut rng);
        assert_eq!(tiny.len(), 3);
        let zero = ds.stratified_fraction(0.0, &mut rng);
        assert!(zero.is_empty());
        let all = ds.stratified_fraction(1.0, &mut rng);
        assert_eq!(all.len(), 300);
    }

    #[test]
    fn as_batch_is_whole_dataset() {
        let ds = toy(2, 2);
        let b = ds.as_batch();
        assert_eq!(b.len(), ds.len());
        assert!(!b.is_empty());
    }
}
