//! Procedural CIFAR-like dataset generation.
//!
//! Each class is defined by a smooth random *prototype* image (a coarse random
//! grid, bilinearly upsampled). Samples are drawn by translating the
//! prototype, adding a per-sample low-frequency jitter pattern and Gaussian
//! pixel noise. Class separability therefore lives in spatial structure — the
//! thing convolutions detect — rather than in trivially separable statistics,
//! and accuracy degrades smoothly with less capacity or data.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use tbnet_tensor::Tensor;

use crate::ImageDataset;

/// Which paper dataset a synthetic dataset stands in for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Stand-in for CIFAR-10: 10 classes, many samples per class, moderate
    /// noise.
    Cifar10Like,
    /// Stand-in for CIFAR-100: 100 classes, few samples per class, higher
    /// noise — the harder regime the paper's CIFAR-100 rows reflect.
    Cifar100Like,
}

impl DatasetKind {
    /// The default generation config for this dataset kind.
    pub fn config(self) -> SyntheticConfig {
        match self {
            DatasetKind::Cifar10Like => SyntheticConfig {
                kind: self,
                classes: 10,
                train_per_class: 100,
                test_per_class: 30,
                channels: 3,
                height: 16,
                width: 16,
                grid: 4,
                noise_std: 1.6,
                jitter: 0.25,
                max_shift: 2,
                seed: 42,
            },
            DatasetKind::Cifar100Like => SyntheticConfig {
                kind: self,
                classes: 100,
                train_per_class: 20,
                test_per_class: 5,
                channels: 3,
                height: 16,
                width: 16,
                grid: 4,
                noise_std: 1.7,
                jitter: 0.35,
                max_shift: 2,
                seed: 43,
            },
        }
    }

    /// Short display name used in experiment tables (mirrors the paper rows).
    pub fn label(self) -> &'static str {
        match self {
            DatasetKind::Cifar10Like => "CIFAR10*",
            DatasetKind::Cifar100Like => "CIFAR100*",
        }
    }
}

/// Configuration of the synthetic generator. Construct via
/// [`DatasetKind::config`] and refine with the `with_*` builder methods.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyntheticConfig {
    /// Which dataset this config emulates.
    pub kind: DatasetKind,
    /// Number of classes.
    pub classes: usize,
    /// Training samples generated per class.
    pub train_per_class: usize,
    /// Test samples generated per class.
    pub test_per_class: usize,
    /// Image channels.
    pub channels: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Coarse prototype grid size (upsampled to `height × width`).
    pub grid: usize,
    /// Standard deviation of per-pixel Gaussian noise.
    pub noise_std: f32,
    /// Amplitude of the per-sample low-frequency jitter pattern.
    pub jitter: f32,
    /// Maximum translation (pixels) applied per sample.
    pub max_shift: usize,
    /// RNG seed; the whole dataset is deterministic given the config.
    pub seed: u64,
}

impl SyntheticConfig {
    /// Overrides the training samples per class.
    pub fn with_train_per_class(mut self, n: usize) -> Self {
        self.train_per_class = n;
        self
    }

    /// Overrides the test samples per class.
    pub fn with_test_per_class(mut self, n: usize) -> Self {
        self.test_per_class = n;
        self
    }

    /// Overrides the noise standard deviation.
    pub fn with_noise_std(mut self, std: f32) -> Self {
        self.noise_std = std;
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the class count (prototypes are regenerated accordingly).
    pub fn with_classes(mut self, classes: usize) -> Self {
        self.classes = classes;
        self
    }

    /// Overrides image height and width.
    pub fn with_size(mut self, height: usize, width: usize) -> Self {
        self.height = height;
        self.width = width;
        self
    }
}

/// A generated train/test pair standing in for CIFAR-10 or CIFAR-100.
#[derive(Debug, Clone)]
pub struct SyntheticCifar {
    train: ImageDataset,
    test: ImageDataset,
    config: SyntheticConfig,
}

impl SyntheticCifar {
    /// Generates the dataset described by `config`, deterministically.
    ///
    /// # Panics
    ///
    /// Panics if the config describes a degenerate geometry (zero classes,
    /// zero-sized images, or a prototype grid larger than the image).
    pub fn generate(config: SyntheticConfig) -> Self {
        assert!(config.classes > 0, "need at least one class");
        assert!(
            config.height >= config.grid && config.width >= config.grid && config.grid > 0,
            "prototype grid must fit in the image"
        );
        assert!(config.channels > 0 && config.height > 0 && config.width > 0);
        let mut rng = StdRng::seed_from_u64(config.seed);

        // One smooth prototype per class.
        let prototypes: Vec<Vec<f32>> = (0..config.classes)
            .map(|_| smooth_pattern(&config, 1.0, &mut rng))
            .collect();

        let train = Self::sample_split(&config, &prototypes, config.train_per_class, &mut rng);
        let test = Self::sample_split(&config, &prototypes, config.test_per_class, &mut rng);
        SyntheticCifar {
            train,
            test,
            config,
        }
    }

    fn sample_split(
        config: &SyntheticConfig,
        prototypes: &[Vec<f32>],
        per_class: usize,
        rng: &mut StdRng,
    ) -> ImageDataset {
        let (c, h, w) = (config.channels, config.height, config.width);
        let sample = c * h * w;
        let n = per_class * config.classes;
        let mut data = Vec::with_capacity(n * sample);
        let mut labels = Vec::with_capacity(n);
        for (class, proto) in prototypes.iter().enumerate() {
            for _ in 0..per_class {
                let dy = rng.gen_range(-(config.max_shift as isize)..=config.max_shift as isize);
                let dx = rng.gen_range(-(config.max_shift as isize)..=config.max_shift as isize);
                let jitter = smooth_pattern(config, config.jitter, rng);
                for ci in 0..c {
                    for yi in 0..h {
                        for xi in 0..w {
                            let sy = clamp_shift(yi as isize + dy, h);
                            let sx = clamp_shift(xi as isize + dx, w);
                            let base = proto[(ci * h + sy) * w + sx];
                            let j = jitter[(ci * h + yi) * w + xi];
                            let noise = gaussian(rng) * config.noise_std;
                            data.push(base + j + noise);
                        }
                    }
                }
                labels.push(class);
            }
        }
        let images = Tensor::from_vec(data, &[n, c, h, w])
            .expect("sample_split: internally consistent shape");
        ImageDataset::new(images, labels, config.classes)
            .expect("sample_split: labels in range by construction")
    }

    /// The training split.
    pub fn train(&self) -> &ImageDataset {
        &self.train
    }

    /// The held-out test split.
    pub fn test(&self) -> &ImageDataset {
        &self.test
    }

    /// The generating configuration.
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }
}

/// A smooth random `[C, H, W]` pattern: coarse `grid × grid` values in
/// `[-amp, amp]`, bilinearly upsampled.
fn smooth_pattern(config: &SyntheticConfig, amp: f32, rng: &mut StdRng) -> Vec<f32> {
    let (c, h, w, g) = (config.channels, config.height, config.width, config.grid);
    let mut coarse = vec![0.0f32; c * g * g];
    for x in coarse.iter_mut() {
        *x = rng.gen_range(-amp..amp);
    }
    let mut out = vec![0.0f32; c * h * w];
    for ci in 0..c {
        for yi in 0..h {
            // Map pixel centre into the coarse grid.
            let fy = (yi as f32 + 0.5) / h as f32 * g as f32 - 0.5;
            let y0 = fy.floor().clamp(0.0, (g - 1) as f32) as usize;
            let y1 = (y0 + 1).min(g - 1);
            let ty = (fy - y0 as f32).clamp(0.0, 1.0);
            for xi in 0..w {
                let fx = (xi as f32 + 0.5) / w as f32 * g as f32 - 0.5;
                let x0 = fx.floor().clamp(0.0, (g - 1) as f32) as usize;
                let x1 = (x0 + 1).min(g - 1);
                let tx = (fx - x0 as f32).clamp(0.0, 1.0);
                let v00 = coarse[(ci * g + y0) * g + x0];
                let v01 = coarse[(ci * g + y0) * g + x1];
                let v10 = coarse[(ci * g + y1) * g + x0];
                let v11 = coarse[(ci * g + y1) * g + x1];
                let top = v00 * (1.0 - tx) + v01 * tx;
                let bot = v10 * (1.0 - tx) + v11 * tx;
                out[(ci * h + yi) * w + xi] = top * (1.0 - ty) + bot * ty;
            }
        }
    }
    out
}

fn clamp_shift(i: isize, len: usize) -> usize {
    i.clamp(0, len as isize - 1) as usize
}

fn gaussian(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SyntheticConfig {
        DatasetKind::Cifar10Like
            .config()
            .with_train_per_class(6)
            .with_test_per_class(3)
    }

    #[test]
    fn shapes_and_counts() {
        let d = SyntheticCifar::generate(small_cfg());
        assert_eq!(d.train().len(), 60);
        assert_eq!(d.test().len(), 30);
        assert_eq!(d.train().channels(), 3);
        assert_eq!(d.train().height(), 16);
        assert_eq!(d.train().classes(), 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = SyntheticCifar::generate(small_cfg());
        let b = SyntheticCifar::generate(small_cfg());
        assert_eq!(a.train().images().as_slice(), b.train().images().as_slice());
        let c = SyntheticCifar::generate(small_cfg().with_seed(99));
        assert_ne!(a.train().images().as_slice(), c.train().images().as_slice());
    }

    #[test]
    fn labels_are_balanced() {
        let d = SyntheticCifar::generate(small_cfg());
        for class in 0..10 {
            let n = d.train().labels().iter().filter(|&&l| l == class).count();
            assert_eq!(n, 6);
        }
    }

    #[test]
    fn images_are_finite() {
        let d = SyntheticCifar::generate(small_cfg());
        assert!(d.train().images().all_finite());
        assert!(d.test().images().all_finite());
    }

    #[test]
    fn same_class_is_more_similar_than_cross_class() {
        // Prototype structure must dominate noise on average: mean intra-class
        // distance < mean inter-class distance.
        let d = SyntheticCifar::generate(small_cfg().with_noise_std(0.3));
        let imgs = d.train().images().as_slice();
        let labels = d.train().labels();
        let sample = 3 * 16 * 16;
        let dist = |a: usize, b: usize| -> f32 {
            imgs[a * sample..(a + 1) * sample]
                .iter()
                .zip(&imgs[b * sample..(b + 1) * sample])
                .map(|(x, y)| (x - y).powi(2))
                .sum()
        };
        let mut intra = (0.0f64, 0u32);
        let mut inter = (0.0f64, 0u32);
        for i in 0..d.train().len() {
            for j in (i + 1)..d.train().len() {
                let dd = dist(i, j) as f64;
                if labels[i] == labels[j] {
                    intra.0 += dd;
                    intra.1 += 1;
                } else {
                    inter.0 += dd;
                    inter.1 += 1;
                }
            }
        }
        let intra_mean = intra.0 / intra.1 as f64;
        let inter_mean = inter.0 / inter.1 as f64;
        assert!(
            intra_mean < inter_mean,
            "intra {intra_mean} must be < inter {inter_mean}"
        );
    }

    #[test]
    fn cifar100_regime_is_harder() {
        let c10 = DatasetKind::Cifar10Like.config();
        let c100 = DatasetKind::Cifar100Like.config();
        assert!(c100.classes > c10.classes);
        assert!(c100.train_per_class < c10.train_per_class);
        assert!(c100.noise_std > c10.noise_std);
        assert_eq!(DatasetKind::Cifar10Like.label(), "CIFAR10*");
        assert_eq!(DatasetKind::Cifar100Like.label(), "CIFAR100*");
    }

    #[test]
    fn builder_methods_apply() {
        let cfg = DatasetKind::Cifar10Like
            .config()
            .with_classes(7)
            .with_size(8, 12)
            .with_noise_std(0.1)
            .with_seed(5)
            .with_train_per_class(2)
            .with_test_per_class(1);
        let d = SyntheticCifar::generate(cfg);
        assert_eq!(d.train().classes(), 7);
        assert_eq!(d.train().height(), 8);
        assert_eq!(d.train().width(), 12);
        assert_eq!(d.train().len(), 14);
        assert_eq!(d.test().len(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn zero_classes_panics() {
        SyntheticCifar::generate(DatasetKind::Cifar10Like.config().with_classes(0));
    }
}
