//! Training-time image augmentation (random horizontal flips and
//! translations — the standard CIFAR recipe).
//!
//! Augmentation is opt-in: the calibrated experiment harness trains without
//! it so the recorded numbers stay reproducible, but downstream users
//! squeezing accuracy out of small synthetic datasets can enable it via
//! [`ImageDataset::minibatches_augmented`](crate::ImageDataset::minibatches_augmented).

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::Batch;

/// Augmentation policy applied independently to every sample of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Augment {
    /// Flip images left-right with probability ½.
    pub flip_horizontal: bool,
    /// Translate by up to ± this many pixels in each direction (edge pixels
    /// are replicated).
    pub max_shift: usize,
}

impl Augment {
    /// The standard CIFAR policy: horizontal flips and ±2-pixel shifts.
    pub fn standard() -> Self {
        Augment {
            flip_horizontal: true,
            max_shift: 2,
        }
    }

    /// No-op policy.
    pub fn none() -> Self {
        Augment {
            flip_horizontal: false,
            max_shift: 0,
        }
    }

    /// Applies the policy to every image in the batch, in place.
    pub fn apply<R: Rng + ?Sized>(&self, batch: &mut Batch, rng: &mut R) {
        let dims = batch.images.dims().to_vec();
        let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
        let plane = h * w;
        let sample = c * plane;
        let data = batch.images.as_mut_slice();
        for ni in 0..n {
            let img = &mut data[ni * sample..(ni + 1) * sample];
            if self.flip_horizontal && rng.gen_bool(0.5) {
                for ci in 0..c {
                    for y in 0..h {
                        let row = &mut img[ci * plane + y * w..ci * plane + (y + 1) * w];
                        row.reverse();
                    }
                }
            }
            if self.max_shift > 0 {
                let s = self.max_shift as isize;
                let dy = rng.gen_range(-s..=s);
                let dx = rng.gen_range(-s..=s);
                if dy != 0 || dx != 0 {
                    let src: Vec<f32> = img.to_vec();
                    for ci in 0..c {
                        for y in 0..h {
                            let sy = (y as isize + dy).clamp(0, h as isize - 1) as usize;
                            for x in 0..w {
                                let sx = (x as isize + dx).clamp(0, w as isize - 1) as usize;
                                img[ci * plane + y * w + x] = src[ci * plane + sy * w + sx];
                            }
                        }
                    }
                }
            }
        }
    }
}

impl Default for Augment {
    fn default() -> Self {
        Augment::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ImageDataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tbnet_tensor::Tensor;

    fn batch_of(n: usize) -> Batch {
        let data: Vec<f32> = (0..n * 3 * 4 * 4).map(|x| x as f32).collect();
        Batch {
            images: Tensor::from_vec(data, &[n, 3, 4, 4]).unwrap(),
            labels: vec![0; n],
        }
    }

    #[test]
    fn none_policy_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut b = batch_of(2);
        let before = b.images.clone();
        Augment::none().apply(&mut b, &mut rng);
        assert_eq!(b.images.as_slice(), before.as_slice());
    }

    #[test]
    fn flip_preserves_pixel_multiset_per_row() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut b = batch_of(8);
        let before = b.images.clone();
        Augment {
            flip_horizontal: true,
            max_shift: 0,
        }
        .apply(&mut b, &mut rng);
        // Every row is either identical or reversed.
        let w = 4;
        for (orig_row, new_row) in before
            .as_slice()
            .chunks(w)
            .zip(b.images.as_slice().chunks(w))
        {
            let mut rev = orig_row.to_vec();
            rev.reverse();
            assert!(new_row == orig_row || new_row == rev.as_slice());
        }
    }

    #[test]
    fn shift_keeps_shape_and_finiteness() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut b = batch_of(4);
        Augment {
            flip_horizontal: false,
            max_shift: 2,
        }
        .apply(&mut b, &mut rng);
        assert_eq!(b.images.dims(), &[4, 3, 4, 4]);
        assert!(b.images.all_finite());
    }

    #[test]
    fn labels_untouched() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = batch_of(3);
        b.labels = vec![2, 0, 1];
        Augment::standard().apply(&mut b, &mut rng);
        assert_eq!(b.labels, vec![2, 0, 1]);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = batch_of(4);
        let mut b = batch_of(4);
        Augment::standard().apply(&mut a, &mut StdRng::seed_from_u64(7));
        Augment::standard().apply(&mut b, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.images.as_slice(), b.images.as_slice());
    }

    #[test]
    fn augmented_minibatches_cover_dataset() {
        let images = Tensor::zeros(&[10, 3, 4, 4]);
        let ds = ImageDataset::new(images, (0..10).map(|i| i % 2).collect(), 2).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let batches = ds.minibatches_augmented(4, &Augment::standard(), &mut rng);
        let total: usize = batches.iter().map(Batch::len).sum();
        assert_eq!(total, 10);
    }
}
