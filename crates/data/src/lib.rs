//! Dataset substrate for the TBNet reproduction.
//!
//! The paper evaluates on CIFAR-10 and CIFAR-100. Those archives are not
//! available in this offline environment, so this crate provides
//! **procedurally generated CIFAR-like datasets** ([`SyntheticCifar`]): each
//! class owns a smooth random prototype image, and samples are produced by
//! jittering, shifting and noising the prototype. A small CNN can learn the
//! class structure — and, crucially for the TBNet experiments, accuracy
//! degrades smoothly with less capacity or less training data, which is the
//! property every table and figure of the paper measures. The substitution is
//! documented in `DESIGN.md` §2.
//!
//! # Example
//!
//! ```
//! use tbnet_data::{DatasetKind, SyntheticCifar};
//!
//! let data = SyntheticCifar::generate(DatasetKind::Cifar10Like.config().with_train_per_class(8));
//! assert_eq!(data.train().classes(), 10);
//! assert_eq!(data.train().len(), 80);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augment;
mod dataset;
mod loader;
mod synthetic;

pub use augment::Augment;
pub use dataset::{Batch, ImageDataset};
pub use loader::BatchPlan;
pub use synthetic::{DatasetKind, SyntheticCifar, SyntheticConfig};
