//! Workspace root crate: re-exports the TBNet reproduction crates for examples and integration tests.
pub use tbnet_core as core;
pub use tbnet_data as data;
pub use tbnet_models as models;
pub use tbnet_nn as nn;
pub use tbnet_tee as tee;
pub use tbnet_tensor as tensor;
