#!/usr/bin/env python3
"""Dead-path check for the prose docs (ARCHITECTURE.md, README.md,
docs/CAPACITY.md).

The architecture docs anchor their explanations to concrete repo paths
(`crates/core/src/dp_train.rs`, `tests/attack_parity.rs`, ...). A rename or
move silently strands those references; this script fails CI when it finds
one. Two kinds of references are checked:

1. relative markdown link targets — ``[text](path)`` where the target has
   no URL scheme and no leading ``#``; an in-page anchor suffix is stripped.
   Resolved against the checked file's own directory (standard markdown
   semantics, so docs in subdirectories link with ``../``);
2. backtick-quoted repo paths — `` `crates/...` `` tokens that start with a
   known top-level directory and contain a ``/``. Tokens with glob or
   placeholder characters (``*``, ``<``, ``{``) are skipped, and a
   ``path:line`` suffix is stripped. Always resolved against the repo root
   (this script's parent directory), wherever the checked doc lives.

Usage:
    check_doc_links.py FILE.md [FILE.md ...]

Exit status: 0 = all references resolve, 1 = dangling reference, 2 = a
checked file itself is missing.
"""

from __future__ import annotations

import os
import re
import sys

# Top-level directories whose backtick-quoted mentions are treated as paths.
PATH_ROOTS = (
    "crates/",
    "tests/",
    "scripts/",
    "ci/",
    "src/",
    "examples/",
    "docs/",
    ".github/",
)

MD_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
BACKTICK = re.compile(r"`([^`\n]+)`")


def candidate_paths(text: str) -> list[tuple[str, bool]]:
    """Extracts every checkable (path, is_repo_rooted) reference."""
    refs: set[tuple[str, bool]] = set()
    for target in MD_LINK.findall(text):
        if "://" in target or target.startswith(("#", "mailto:")):
            continue
        refs.add((target.split("#", 1)[0], False))
    for token in BACKTICK.findall(text):
        if not token.startswith(PATH_ROOTS) or "/" not in token:
            continue
        if any(ch in token for ch in "*<{ "):
            continue
        # Strip a `path:line` location suffix and trailing punctuation.
        refs.add((token.split(":", 1)[0].rstrip("/."), True))
    return sorted(ref for ref in refs if ref[0])


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    failures = 0
    for doc in sys.argv[1:]:
        try:
            with open(doc, encoding="utf-8") as fh:
                text = fh.read()
        except OSError as exc:
            print(f"error: cannot read {doc}: {exc}", file=sys.stderr)
            return 2
        doc_dir = os.path.dirname(os.path.abspath(doc))
        for ref, repo_rooted in candidate_paths(text):
            base = repo_root if repo_rooted else doc_dir
            if not os.path.exists(os.path.join(base, ref)):
                print(f"{doc}: dangling path reference `{ref}`")
                failures += 1
    if failures:
        print(f"{failures} dangling reference(s)", file=sys.stderr)
        return 1
    print("all path references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
