#!/usr/bin/env python3
"""Bench-regression gate for the CI bench smokes.

Diffs a freshly generated BENCH_*.ci.json against a checked-in baseline and
fails on per-kernel (or per-training-run) slowdowns. CI runners differ in
absolute speed from the host that recorded the baseline and are individually
noisy, so raw wall-clock is never compared directly; instead:

1. every row is keyed (kernel+shape for backend reports, phase+engine+workers
   for training reports) and its wall-clock ratio current/baseline computed;
2. the *median* ratio across all shared rows is taken as the run calibration
   — it absorbs the runner being uniformly faster/slower than the baseline
   host and most shared noise;
3. a row fails only when BOTH its calibrated slowdown (relative to the
   other kernels of the same run) AND its raw current/baseline slowdown
   exceed the threshold (default 25%).

Requiring both guards against the two spurious-failure modes of
cross-machine diffs: a uniformly slower runner inflates every raw ratio
but leaves calibrated slowdowns near zero, while a runner whose core count
differs from the baseline host's shifts the median through the
parallelizable rows — there the non-parallel rows look calibrated-slow but
their raw ratio stays near 1.0. A real regression recorded on comparable
hardware trips both.

Rows present in the baseline but missing from the current report fail too
(a silent coverage regression); new rows are reported but allowed.

Usage:
    check_bench_regression.py BASELINE CURRENT [--threshold 0.25]

Exit status: 0 = gate passed, 1 = regression or coverage loss, 2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys


def load_rows(path: str) -> dict[str, float]:
    """Maps a stable row key to the row's wall-clock measurement."""
    try:
        with open(path, encoding="utf-8") as fh:
            report = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)
    rows: dict[str, float] = {}
    for row in report.get("results", []):
        if "kernel" in row:
            # backend-comparison report: gate the Parallel backend's time.
            key = f'{row["kernel"]}|{row.get("shape", "")}'
            rows[key] = float(row["parallel_ms"])
        elif "engine" in row:
            # training-engine report: gate every phase/engine/worker cell.
            key = f'{row.get("phase", "train")}|{row["engine"]}|W{row["workers"]}'
            rows[key] = float(row["seconds"])
        elif "path" in row:
            # inference report: gate every execution path/shape cell.
            key = f'infer|{row["path"]}|{row.get("shape", "")}'
            rows[key] = float(row["ms"])
        elif "scenario" in row:
            # serving-runtime report: gate each scenario's latency percentiles.
            key = f'serve|{row["scenario"]}|{row["metric"]}'
            rows[key] = float(row["value_ms"])
        elif "plan" in row:
            # capacity-planner report: gate the analytic cost-like metrics
            # (occupancy, latency, footprint, knee budget, world count). These
            # are priced against a fixed cost profile, so they are machine-
            # exact; any drift is a planner/cost-model change, not noise.
            key = f'plan|{row["plan"]}|{row["metric"]}'
            rows[key] = float(row["value"])
        elif "arch" in row:
            # model-zoo report: gate every architecture/metric cell. Accuracy,
            # attack, prune-ratio and memory rows are seed-deterministic
            # (single-worker training); latency rows ride the same median
            # calibration as every other wall-clock metric.
            key = f'zoo|{row["arch"]}|{row["metric"]}'
            rows[key] = float(row["value"])
    if not rows:
        print(f"error: {path} contains no gateable results", file=sys.stderr)
        sys.exit(2)
    return rows


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="checked-in baseline report (ci/bench-baselines/...)")
    ap.add_argument("current", help="freshly generated BENCH_*.ci.json")
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="maximum calibrated per-row slowdown (default 0.25 = 25%%)",
    )
    ap.add_argument(
        "--min-agreement",
        type=float,
        default=None,
        help="fail unless the current report's int8_top1_agreement "
        "reaches this floor (accuracy-delta gate for inference reports)",
    )
    ap.add_argument(
        "--min-fused-speedup",
        type=float,
        default=None,
        help="fail unless the current report's fused_speedup reaches this floor",
    )
    ap.add_argument(
        "--min-int8-speedup",
        type=float,
        default=None,
        help="fail unless the current report's int8_mr_speedup reaches this floor",
    )
    ap.add_argument(
        "--min-knee-qps",
        type=float,
        default=None,
        help="fail unless the planner report's knee_qps (capacity-curve knee "
        "throughput, analytic hence machine-exact) reaches this floor",
    )
    ap.add_argument(
        "--min-amortization",
        type=float,
        default=None,
        help="fail unless the planner report's schedule_amortization "
        "(world-switch savings of batched cross-tenant scheduling) "
        "reaches this floor",
    )
    ap.add_argument(
        "--max-shed-rate",
        type=float,
        default=None,
        help="fail if the serving report's healthy_shed_rate exceeds this "
        "ceiling (a healthy engine at bench load should shed almost nothing)",
    )
    ap.add_argument(
        "--max-faulted-shed-rate",
        type=float,
        default=None,
        help="fail if the serving report's faulted_shed_rate exceeds this ceiling",
    )
    args = ap.parse_args()

    base = load_rows(args.baseline)
    cur = load_rows(args.current)

    missing = sorted(set(base) - set(cur))
    added = sorted(set(cur) - set(base))
    shared = sorted(set(base) & set(cur))
    if not shared:
        print("error: baseline and current reports share no rows", file=sys.stderr)
        return 2

    ratios = {k: cur[k] / base[k] for k in shared if base[k] > 0.0}
    calibration = statistics.median(ratios.values())
    print(
        f"gate: {len(shared)} shared rows, run calibration ×{calibration:.3f} "
        f"(median current/baseline), threshold +{args.threshold:.0%}"
    )

    failures = []
    for key in shared:
        if base[key] <= 0.0:
            continue
        raw = ratios[key] - 1.0
        calibrated = ratios[key] / calibration - 1.0
        marker = ""
        if calibrated > args.threshold and raw > args.threshold:
            failures.append(key)
            marker = "  <-- REGRESSION"
        elif calibrated > args.threshold or raw > args.threshold:
            marker = "  (one-sided, tolerated)"
        print(
            f"  {key:45} base {base[key]:10.3f}  cur {cur[key]:10.3f}  "
            f"raw {raw:+7.1%}  calibrated {calibrated:+7.1%}{marker}"
        )

    for key in added:
        print(f"  {key:45} (new row, not gated)")
    for key in missing:
        print(f"  {key:45} MISSING from current report")

    # Quality-floor gates on the current report's top-level summary fields
    # (wall-clock *ratios* measured within one run are machine-calibrated by
    # construction, so unlike raw times they can be gated absolutely).
    floor_failures = []
    floors = [
        ("int8_top1_agreement", args.min_agreement),
        ("fused_speedup", args.min_fused_speedup),
        ("int8_mr_speedup", args.min_int8_speedup),
        ("knee_qps", args.min_knee_qps),
        ("schedule_amortization", args.min_amortization),
    ]
    ceilings = [
        ("healthy_shed_rate", args.max_shed_rate),
        ("faulted_shed_rate", args.max_faulted_shed_rate),
    ]
    if any(limit is not None for _, limit in floors + ceilings):
        with open(args.current, encoding="utf-8") as fh:
            current_report = json.load(fh)
        for field, floor in floors:
            if floor is None:
                continue
            value = current_report.get(field)
            if value is None:
                floor_failures.append(f"{field} missing from {args.current}")
                continue
            status = "ok" if float(value) >= floor else "BELOW FLOOR"
            print(f"  {field:45} floor {floor:10.3f}  cur {float(value):10.3f}  {status}")
            if float(value) < floor:
                floor_failures.append(f"{field} {float(value):.4f} < floor {floor:.4f}")
        for field, ceiling in ceilings:
            if ceiling is None:
                continue
            value = current_report.get(field)
            if value is None:
                floor_failures.append(f"{field} missing from {args.current}")
                continue
            status = "ok" if float(value) <= ceiling else "ABOVE CEILING"
            print(f"  {field:45} ceil  {ceiling:10.3f}  cur {float(value):10.3f}  {status}")
            if float(value) > ceiling:
                floor_failures.append(f"{field} {float(value):.4f} > ceiling {ceiling:.4f}")

    if missing:
        print(f"FAIL: {len(missing)} baseline row(s) missing — bench coverage regressed")
    if failures:
        print(
            f"FAIL: {len(failures)} row(s) slower than {args.threshold:.0%} "
            "both raw and calibrated"
        )
    for reason in floor_failures:
        print(f"FAIL: {reason}")
    if missing or failures or floor_failures:
        return 1
    print("PASS: no per-kernel regression beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
